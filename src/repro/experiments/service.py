"""The long-running sweep service: ``repro serve`` and its clients.

A single-process asyncio daemon that accepts sweep jobs from many
concurrent clients, deduplicates compute through the content-addressed
trial store (:mod:`repro.experiments.store`), and fans uncached trials
over a ``ProcessPoolExecutor``. The front door for "many users, heavy
traffic": identical trials are provably identical work (per-trial seeds
are SHA-256 of the full trial identity), so a resubmitted sweep is served
from the store and never touches the pool.

Wire protocol — line-delimited JSON over TCP on localhost:

* the client sends exactly one request line ``{"cmd": ..., ...}``;
* the server answers with zero or more ``{"event": "trial"|"job", ...}``
  progress lines (NDJSON streaming, for ``submit --wait`` / ``watch``),
  terminated by one ``{"event": "end", "ok": bool, ...}`` line, then
  closes the connection.

The bound port is written to ``<state_dir>/port`` so clients need only
the state directory. Commands: ``ping``, ``submit`` (optionally
``wait``-streaming), ``status``, ``watch``, ``fetch``, ``shutdown``.

Persistence — jobs survive restart via an append-only journal,
``<state_dir>/queue.jsonl``: one ``{"kind": "job", ...}`` record per
submission (the full sweep dict, schema-stamped) and one
``{"kind": "done", ...}`` record per completion. On startup the journal
is replayed: jobs with no ``done`` record (queued, or running when the
process died) re-enter the FIFO queue in submission order — and because
every finished trial is already in the trial store, re-running an
interrupted job only recomputes the trials that never completed.
Finished results live under ``<state_dir>/results/<job_id>.json`` (the
standard ``kind: "results"`` payload), so ``fetch`` works across
restarts too.

Scheduling is fair FIFO across clients: one job runs at a time, in
submission order, with its own pool capped at the uncached-trial count —
no client can starve another by submitting a wide sweep, and progress
streams to any number of watchers while the queue drains.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import socket
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.experiments.io import results_payload, write_results_json
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import _sweep_worker, spec_payload
from repro.experiments.spec import ExperimentSpec, SweepSpec
from repro.experiments.store import TrialStore, default_cache_root

#: Schema identifier stamped into every journalled job record.
JOB_SCHEMA = "repro.experiments.job/v1"

#: Journal filename inside the service state directory.
QUEUE_JOURNAL = "queue.jsonl"


def default_state_dir() -> Path:
    """Where ``repro serve`` keeps its journal, port file and results."""
    return default_cache_root() / "service"


def sweep_to_dict(sweep: SweepSpec) -> Dict[str, Any]:
    """The JSON form of a sweep, as journalled and sent over the wire."""
    return {
        "scenario": sweep.scenario,
        "grid": {k: list(v) for k, v in sweep.grid.items()},
        "trials": sweep.trials,
        "base_seed": sweep.base_seed,
        "scheduler": sweep.scheduler,
    }


def sweep_from_dict(data: Dict[str, Any]) -> SweepSpec:
    return SweepSpec(
        scenario=data["scenario"],
        grid={k: list(v) for k, v in data.get("grid", {}).items()},
        trials=int(data.get("trials", 1)),
        base_seed=int(data.get("base_seed", 0)),
        scheduler=data.get("scheduler"),
    )


@dataclass
class Job:
    """One submitted sweep, from journal record to served results."""

    id: str
    sweep: Dict[str, Any]
    workers: int
    trace: bool = False  #: stream per-event ``repro.trace/v1`` records
    status: str = "queued"  # queued | running | done | failed
    total: int = 0
    completed: int = 0
    hits: int = 0
    misses: int = 0
    error: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    update: Optional[asyncio.Event] = None

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "status": self.status,
            "scenario": self.sweep.get("scenario"),
            "total": self.total,
            "completed": self.completed,
            "hits": self.hits,
            "misses": self.misses,
            "error": self.error,
        }


class SweepService:
    """The asyncio sweep daemon; see the module docstring for the protocol."""

    def __init__(
        self,
        state_dir: Union[str, Path, None] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store: Union[TrialStore, str, Path, None] = None,
    ) -> None:
        self.state_dir = Path(state_dir) if state_dir is not None else default_state_dir()
        self.host = host
        self.port = port  # requested; the bound port lands in self.bound_port
        self.bound_port: Optional[int] = None
        self.workers = max(1, workers)
        self.store = store if isinstance(store, TrialStore) else TrialStore(store)
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # submission order, for status listings
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._runner: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()
        self._seq = 0

    # -- paths ----------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.state_dir / QUEUE_JOURNAL

    @property
    def port_path(self) -> Path:
        return self.state_dir / "port"

    def results_path(self, job_id: str) -> Path:
        return self.state_dir / "results" / f"{job_id}.json"

    # -- journal --------------------------------------------------------

    def _append_journal(self, record: Dict[str, Any]) -> None:
        with self.journal_path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _recover(self) -> List[str]:
        """Replay the journal; returns pending job ids in FIFO order."""
        done: Dict[str, Dict[str, Any]] = {}
        submitted: List[Dict[str, Any]] = []
        if self.journal_path.exists():
            for line in self.journal_path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write from a crash: ignore
                if record.get("kind") == "job" and record.get("schema") == JOB_SCHEMA:
                    submitted.append(record)
                elif record.get("kind") == "done":
                    done[record.get("id")] = record
        pending: List[str] = []
        for record in submitted:
            job = Job(
                id=record["id"],
                sweep=record["sweep"],
                workers=int(record.get("workers", self.workers)),
                trace=bool(record.get("trace", False)),
            )
            finish = done.get(job.id)
            if finish is None:
                pending.append(job.id)  # queued or interrupted mid-run
            else:
                job.status = finish.get("status", "done")
                job.error = finish.get("error")
                job.total = int(finish.get("total", 0))
                job.completed = job.total if job.status == "done" else 0
                job.hits = int(finish.get("hits", 0))
                job.misses = int(finish.get("misses", 0))
            self.jobs[job.id] = job
            self._order.append(job.id)
            self._seq = max(self._seq, _seq_of(job.id))
        return pending

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / "results").mkdir(exist_ok=True)
        for job_id in self._recover():
            self._queue.put_nowait(job_id)
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self.port_path.write_text(f"{self.bound_port}\n")
        self._runner = asyncio.create_task(self._run_jobs())

    async def stop(self) -> None:
        self._stopping.set()

    async def _main(self, on_ready: Optional[Callable[["SweepService"], None]] = None) -> None:
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stopping.wait()
        finally:
            if self._runner is not None:
                self._runner.cancel()
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            try:
                self.port_path.unlink()
            except OSError:
                pass

    def run(self, on_ready: Optional[Callable[["SweepService"], None]] = None) -> None:
        """Blocking entrypoint (``repro serve``): serve until shut down."""
        asyncio.run(self._main(on_ready))

    # -- job execution --------------------------------------------------

    async def _run_jobs(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self.jobs[job_id]
            try:
                await self._execute(job)
            except asyncio.CancelledError:
                raise  # service shutdown mid-job: journal has no "done",
                # so the job is re-queued (and mostly cached) on restart
            except Exception as exc:  # noqa: BLE001 - job isolation
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                self._finish(job)

    def _emit(self, job: Job, event: Dict[str, Any]) -> None:
        job.events.append(event)
        if job.update is not None:
            job.update.set()

    def _finish(self, job: Job) -> None:
        self._append_journal(
            {
                "kind": "done",
                "id": job.id,
                "status": job.status,
                "error": job.error,
                "total": job.total,
                "hits": job.hits,
                "misses": job.misses,
            }
        )
        self._emit(
            job, {"event": "job", "status": job.status, **job.summary()}
        )

    async def _execute(self, job: Job) -> None:
        job.update = job.update or asyncio.Event()
        job.status = "running"
        self._emit(job, {"event": "job", "status": "running", "id": job.id})
        sweep = sweep_from_dict(job.sweep)
        specs = [spec.resolved() for spec in sweep.specs()]
        if not specs:
            raise ReproError("sweep expanded to zero trials")
        job.total = len(specs)
        results: List[Optional[ExperimentResult]] = [None] * len(specs)
        for i, spec in enumerate(specs):
            cached = self.store.get(spec)
            if cached is not None:
                results[i] = cached
                job.hits += 1
                job.completed += 1
                self._emit(
                    job,
                    {"event": "trial", "index": i, "cached": True, "seed": spec.seed},
                )
            if i % 64 == 63:
                await asyncio.sleep(0)  # keep status/watch connections live
        miss = [i for i, r in enumerate(results) if r is None]
        if miss and job.trace:
            # Traced jobs run their uncached trials sequentially on one
            # worker thread: the recording observer is process-global
            # state (and a subprocess could not stream records back), and
            # interleaved trials would interleave their record streams.
            loop = asyncio.get_running_loop()
            for i in miss:
                result = await loop.run_in_executor(
                    None, self._traced_trial, job, i, specs[i], loop
                )
                self.store.put(specs[i], result)
                results[i] = result
                job.misses += 1
                job.completed += 1
                self._emit(
                    job,
                    {
                        "event": "trial",
                        "index": i,
                        "cached": False,
                        "seed": specs[i].seed,
                    },
                )
        elif miss:
            loop = asyncio.get_running_loop()
            with ProcessPoolExecutor(max_workers=min(job.workers, len(miss))) as pool:

                async def run_one(i: int) -> None:
                    data = await loop.run_in_executor(
                        pool, _sweep_worker, spec_payload(specs[i])
                    )
                    result = ExperimentResult.from_dict(data)
                    self.store.put(specs[i], result)
                    results[i] = result
                    job.misses += 1
                    job.completed += 1
                    self._emit(
                        job,
                        {
                            "event": "trial",
                            "index": i,
                            "cached": False,
                            "seed": specs[i].seed,
                        },
                    )

                await asyncio.gather(*(run_one(i) for i in miss))
        header = {"job": job.summary(), "sweep": job.sweep}
        write_results_json(self.results_path(job.id), results, header)
        job.status = "done"
        self._finish(job)

    def _traced_trial(self, job: Job, index: int, spec: ExperimentSpec, loop) -> ExperimentResult:
        """Run one uncached trial in-process under a streaming recording.

        Runs on a worker thread; every ``repro.trace/v1`` record is
        marshalled back onto the event loop and forwarded to streaming
        clients as an ``{"event": "trace", ...}`` line. Scenarios with no
        Simulation (pure pipelines) simply stream nothing — the writer is
        closed leniently.
        """
        from repro.experiments.runner import run_experiment
        from repro.trace.record import recording
        from repro.trace.writer import TraceWriter

        def sink(record: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(
                self._emit,
                job,
                {"event": "trace", "index": index, "record": record},
            )

        writer = TraceWriter(
            None,  # stream-only: records exist on the wire, not on disk
            scenario=spec.scenario,
            params=spec.params,
            seed=spec.seed,
            scheduler=spec.scheduler,
            sink=sink,
        )
        try:
            with recording(writer):
                result = run_experiment(spec)
        except BaseException:
            writer.abort()
            raise
        writer.close()
        return result

    # -- request handling -----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError:
                await self._send(writer, {"event": "end", "ok": False, "error": "bad request JSON"})
                return
            cmd = request.get("cmd")
            handler = {
                "ping": self._cmd_ping,
                "submit": self._cmd_submit,
                "status": self._cmd_status,
                "watch": self._cmd_watch,
                "fetch": self._cmd_fetch,
                "shutdown": self._cmd_shutdown,
            }.get(cmd)
            if handler is None:
                await self._send(
                    writer, {"event": "end", "ok": False, "error": f"unknown cmd {cmd!r}"}
                )
                return
            await handler(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
        writer.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
        await writer.drain()

    async def _cmd_ping(self, request: Dict, writer: asyncio.StreamWriter) -> None:
        await self._send(
            writer,
            {
                "event": "end",
                "ok": True,
                "pid": os.getpid(),
                "jobs": len(self.jobs),
                "queued": self._queue.qsize(),
                "store": self.store.stats(),
            },
        )

    async def _cmd_submit(self, request: Dict, writer: asyncio.StreamWriter) -> None:
        data = request.get("sweep")
        try:
            sweep = sweep_from_dict(data)
            total = sum(1 for _ in sweep.specs())  # validates params early
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            await self._send(writer, {"event": "end", "ok": False, "error": str(exc)})
            return
        self._seq += 1
        digest = hashlib.sha256(
            json.dumps(data, sort_keys=True, default=str).encode()
        ).hexdigest()[:8]
        job = Job(
            id=f"job-{self._seq:04d}-{digest}",
            sweep=sweep_to_dict(sweep),
            workers=int(request.get("workers") or self.workers),
            trace=bool(request.get("trace", False)),
            total=total,
            update=asyncio.Event(),
        )
        self.jobs[job.id] = job
        self._order.append(job.id)
        self._append_journal(
            {
                "kind": "job",
                "schema": JOB_SCHEMA,
                "id": job.id,
                "sweep": job.sweep,
                "workers": job.workers,
                "trace": job.trace,
            }
        )
        position = self._queue.qsize()
        self._queue.put_nowait(job.id)
        if not request.get("wait"):
            await self._send(
                writer,
                {"event": "end", "ok": True, "id": job.id, "position": position, "total": total},
            )
            return
        await self._stream_job(job, writer)

    async def _stream_job(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Replay then follow a job's progress events; end on completion."""
        job.update = job.update or asyncio.Event()
        idx = 0
        while True:
            if idx < len(job.events):
                await self._send(writer, job.events[idx])
                idx += 1
                continue
            if job.status in ("done", "failed"):
                break
            job.update.clear()
            if idx < len(job.events) or job.status in ("done", "failed"):
                continue
            await job.update.wait()
        await self._send(
            writer, {"event": "end", "ok": job.status == "done", **job.summary()}
        )

    async def _cmd_status(self, request: Dict, writer: asyncio.StreamWriter) -> None:
        job_id = request.get("id")
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is None:
                await self._send(
                    writer, {"event": "end", "ok": False, "error": f"unknown job {job_id!r}"}
                )
                return
            await self._send(writer, {"event": "end", "ok": True, "job": job.summary()})
            return
        await self._send(
            writer,
            {
                "event": "end",
                "ok": True,
                "jobs": [self.jobs[jid].summary() for jid in self._order],
                "store": self.store.stats(),
            },
        )

    async def _cmd_watch(self, request: Dict, writer: asyncio.StreamWriter) -> None:
        job = self.jobs.get(request.get("id"))
        if job is None:
            await self._send(
                writer,
                {"event": "end", "ok": False, "error": f"unknown job {request.get('id')!r}"},
            )
            return
        await self._stream_job(job, writer)

    async def _cmd_fetch(self, request: Dict, writer: asyncio.StreamWriter) -> None:
        job_id = request.get("id")
        job = self.jobs.get(job_id)
        if job is None:
            await self._send(
                writer, {"event": "end", "ok": False, "error": f"unknown job {job_id!r}"}
            )
            return
        path = self.results_path(job_id)
        if job.status != "done" or not path.exists():
            await self._send(
                writer,
                {
                    "event": "end",
                    "ok": False,
                    "error": f"job {job_id} is {job.status}, results not available",
                },
            )
            return
        payload = json.loads(path.read_text())
        await self._send(writer, {"event": "end", "ok": True, "payload": payload})

    async def _cmd_shutdown(self, request: Dict, writer: asyncio.StreamWriter) -> None:
        await self._send(writer, {"event": "end", "ok": True, "stopping": True})
        self._stopping.set()


def _seq_of(job_id: str) -> int:
    """The monotonic sequence number embedded in a job id (0 if absent)."""
    try:
        return int(job_id.split("-")[1])
    except (IndexError, ValueError):
        return 0


# ----------------------------------------------------------------------
# Blocking client (CLI, tests)
# ----------------------------------------------------------------------


class ServiceClient:
    """Synchronous client for the sweep service wire protocol.

    Resolves the daemon's port from ``<state_dir>/port`` unless given one
    explicitly; every method opens one connection, sends one request
    line, and consumes the NDJSON response stream. Streaming commands
    (``submit(wait=True)``, ``watch``) invoke ``on_event`` per progress
    line; every method returns the final ``end`` record.
    """

    def __init__(
        self,
        state_dir: Union[str, Path, None] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 600.0,
    ) -> None:
        self.state_dir = Path(state_dir) if state_dir is not None else default_state_dir()
        self.host = host
        self._port = port
        self.timeout = timeout

    @property
    def port(self) -> int:
        if self._port is None:
            path = self.state_dir / "port"
            try:
                self._port = int(path.read_text().strip())
            except (OSError, ValueError):
                raise ReproError(
                    f"sweep service not running (no port file at {path}; "
                    f"start it with `repro serve`)"
                ) from None
        return self._port

    def _request(self, payload: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        try:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ReproError(
                f"cannot reach sweep service at {self.host}:{self.port} ({exc}); "
                f"is `repro serve` running?"
            ) from exc
        with sock, sock.makefile("rwb") as fh:
            fh.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
            fh.flush()
            for raw in fh:
                line = raw.strip()
                if line:
                    yield json.loads(line)

    def _final(
        self,
        payload: Dict[str, Any],
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        final: Optional[Dict[str, Any]] = None
        for record in self._request(payload):
            if record.get("event") == "end":
                final = record
                break
            if on_event is not None:
                on_event(record)
        if final is None:
            raise ReproError("sweep service closed the connection mid-response")
        if not final.get("ok"):
            raise ReproError(final.get("error") or "sweep service request failed")
        return final

    def ping(self) -> Dict[str, Any]:
        return self._final({"cmd": "ping"})

    def submit(
        self,
        sweep: Union[SweepSpec, Dict[str, Any]],
        workers: Optional[int] = None,
        wait: bool = False,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        trace: bool = False,
    ) -> Dict[str, Any]:
        """Queue a sweep; ``trace`` streams per-event trace records.

        With ``trace=True`` the service runs uncached trials under a
        ``repro.trace`` recording and every streaming client receives
        ``{"event": "trace", "index": i, "record": {...}}`` lines
        interleaved with trial progress — the live-observability mode.
        """
        data = sweep_to_dict(sweep) if isinstance(sweep, SweepSpec) else sweep
        request = {
            "cmd": "submit",
            "sweep": data,
            "workers": workers,
            "wait": wait,
            "trace": trace,
        }
        return self._final(request, on_event)

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        request: Dict[str, Any] = {"cmd": "status"}
        if job_id is not None:
            request["id"] = job_id
        return self._final(request)

    def watch(
        self,
        job_id: str,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        return self._final({"cmd": "watch", "id": job_id}, on_event)

    def fetch(self, job_id: str) -> Dict[str, Any]:
        """The job's ``kind: "results"`` payload (validates downstream)."""
        return self._final({"cmd": "fetch", "id": job_id})["payload"]

    def fetch_results(self, job_id: str) -> List[ExperimentResult]:
        payload = self.fetch(job_id)
        return [ExperimentResult.from_dict(d) for d in payload["results"]]

    def shutdown(self) -> Dict[str, Any]:
        return self._final({"cmd": "shutdown"})


def serve_in_thread(
    state_dir: Union[str, Path],
    workers: int = 1,
    store: Union[TrialStore, str, Path, None] = None,
    timeout: float = 30.0,
) -> "tuple[SweepService, threading.Thread]":
    """Start a service on a daemon thread and wait until it is accepting.

    Test/embedding helper: returns once the port file is written. Stop it
    with ``ServiceClient(state_dir).shutdown()`` and join the thread.
    """
    service = SweepService(state_dir=state_dir, port=0, workers=workers, store=store)
    ready = threading.Event()
    thread = threading.Thread(
        target=service.run, kwargs={"on_ready": lambda _s: ready.set()}, daemon=True
    )
    thread.start()
    if not ready.wait(timeout):
        raise ReproError("sweep service failed to start within the timeout")
    return service, thread
