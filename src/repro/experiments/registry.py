"""The scenario registry: the one catalogue of runnable workloads.

Every experiment the repository can run — counting, universal shape and
pattern construction, 3D cubes, replication, repair, synchronous rounds —
registers here as a :class:`Scenario`: a name, a typed parameter schema
with defaults and choices, tags, determinism/scheduler capabilities, and a
thin adapter callable wrapping the underlying ``run_*`` entrypoint. The
CLI (``repro run`` / ``repro sweep`` / ``repro list`` / ``repro describe``),
the sweep runner, the benchmarks, and the generated ``EXPERIMENTS.md``
index are all derived from this catalogue; adding a workload means
registering one scenario, nothing else.

Adapters live next to the code they wrap (``repro.constructors.scenarios``,
``repro.population.scenarios``, ``repro.replication.scenarios``,
``repro.faults.scenarios``, ``repro.sync.scenarios``,
``repro.protocols.scenarios``) and are imported by
:func:`load_builtin_scenarios`. The execution engine underneath every
adapter is ``repro.core.simulator``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.core.simulator import StopReason
from repro.errors import ReproError

#: JSON-native metric values an adapter may report.
MetricValue = Any

#: Modules that register the built-in scenarios on import.
_BUILTIN_MODULES = (
    "repro.protocols.scenarios",
    "repro.population.scenarios",
    "repro.constructors.scenarios",
    "repro.replication.scenarios",
    "repro.faults.scenarios",
    "repro.sync.scenarios",
)

_PARAM_TYPES: Dict[str, type] = {"int": int, "float": float, "str": str}


@dataclass(frozen=True)
class Param:
    """One declared scenario parameter.

    ``type`` is a name (``"int"`` / ``"float"`` / ``"str"``) rather than a
    Python type so the schema itself is JSON-representable; ``choices``
    restricts values, ``help`` feeds the generated CLI and EXPERIMENTS.md.
    """

    name: str
    type: str = "int"
    default: MetricValue = None
    choices: Optional[Tuple[MetricValue, ...]] = None
    minimum: Optional[MetricValue] = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.type not in _PARAM_TYPES:
            raise ReproError(
                f"param {self.name!r}: unknown type {self.type!r} "
                f"(expected one of {sorted(_PARAM_TYPES)})"
            )

    @property
    def pytype(self) -> type:
        return _PARAM_TYPES[self.type]

    def convert(self, raw: MetricValue) -> MetricValue:
        """Coerce ``raw`` to the declared type and validate choices."""
        try:
            value = self.pytype(raw)
        except (TypeError, ValueError) as exc:
            raise ReproError(
                f"param {self.name!r}: cannot convert {raw!r} to {self.type}"
            ) from exc
        if self.choices is not None and value not in self.choices:
            raise ReproError(
                f"param {self.name!r}: {value!r} not in choices "
                f"{tuple(self.choices)}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ReproError(
                f"param {self.name!r}: {value!r} is below the minimum "
                f"{self.minimum!r}"
            )
        return value


@dataclass
class ScenarioOutcome:
    """What a scenario adapter returns for one execution.

    Only ``metrics`` is mandatory; the counters mirror the fields of
    :class:`repro.core.simulator.RunResult` where the workload has them,
    and ``renders`` carries named ASCII renderings (the textual analogues
    of the paper's figures) for the CLI to print.
    """

    metrics: Dict[str, MetricValue]
    events: Optional[int] = None
    raw_steps: Optional[int] = None
    evaluations: Optional[int] = None
    stop_reason: Optional[StopReason] = None
    renders: Dict[str, str] = field(default_factory=dict)


#: Adapter signature: fully-resolved params, the trial seed, and the
#: scheduler kind (``None`` = scenario default) -> outcome.
ScenarioFn = Callable[[Mapping[str, MetricValue], Optional[int], Optional[str]], ScenarioOutcome]


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol a scenario executes, with its analysis context.

    ``factory`` is the zero-arg protocol constructor; ``extra_initial``
    names states present in the scenario's initial configuration beyond
    the protocol's own initial/leader states — e.g. the ``i``/``e`` nodes
    of a pre-built parent line in the replication scenarios. The static
    analyzer (``repro analyze``) seeds its reachability closure with them;
    ``repro describe`` ignores the extras and just compiles ``factory``.
    """

    factory: Callable[[], Any]
    extra_initial: Tuple[Any, ...] = ()


def protocol_specs(scenario: "Scenario") -> Tuple[ProtocolSpec, ...]:
    """The scenario's protocols, normalized to :class:`ProtocolSpec`.

    ``Scenario.protocols`` accepts bare zero-arg factories (the original,
    still-common form) or explicit specs; consumers should only ever see
    specs.
    """
    specs = []
    for entry in scenario.protocols:
        if isinstance(entry, ProtocolSpec):
            specs.append(entry)
        else:
            specs.append(ProtocolSpec(factory=entry))
    return tuple(specs)


@dataclass(frozen=True)
class Scenario:
    """A registered workload: schema + adapter.

    ``deterministic`` declares that the adapter consumes no randomness (the
    seed is still recorded in results for schema uniformity);
    ``schedulable`` that it accepts a scheduler kind from
    ``repro.core.scheduler.make_scheduler``. ``covers`` lists the qualified
    names of the public ``run_*`` entrypoints the adapter exercises — the
    registry-completeness test fails on any entrypoint no scenario covers.
    ``protocols`` names the protocol factories a scheduler-driven scenario
    executes — zero-arg callables returning a
    :class:`~repro.core.protocol.Protocol`, or :class:`ProtocolSpec`
    entries when the analyzer needs extra initial states; ``repro
    describe`` compiles them to report state count, rule count, and the
    hot-state set, and ``repro analyze`` runs the static analyzer over
    them (normalize with :func:`protocol_specs`).
    """

    name: str
    summary: str
    run: ScenarioFn
    params: Tuple[Param, ...] = ()
    tags: Tuple[str, ...] = ()
    deterministic: bool = False
    schedulable: bool = False
    covers: Tuple[str, ...] = ()
    protocols: Tuple[Any, ...] = ()  # factories and/or ProtocolSpec entries

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise ReproError(f"scenario {self.name!r} has no param {name!r}")

    def resolve(self, overrides: Optional[Mapping[str, MetricValue]] = None) -> Dict[str, MetricValue]:
        """Defaults merged with ``overrides``, converted and validated."""
        overrides = dict(overrides or {})
        resolved: Dict[str, MetricValue] = {}
        for p in self.params:
            if p.name in overrides:
                resolved[p.name] = p.convert(overrides.pop(p.name))
            else:
                resolved[p.name] = p.default
        if overrides:
            raise ReproError(
                f"scenario {self.name!r}: unknown params "
                f"{sorted(overrides)} (declared: {[p.name for p in self.params]})"
            )
        return resolved


_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the catalogue (idempotent re-registration of an
    identical name is an error: two workloads must not share a name)."""
    if scenario.name in _REGISTRY:
        raise ReproError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario(**kwargs: Any) -> Callable[[ScenarioFn], ScenarioFn]:
    """Decorator form: ``@scenario(name=..., summary=..., params=...)``."""

    def wrap(fn: ScenarioFn) -> ScenarioFn:
        register(Scenario(run=fn, **kwargs))
        return fn

    return wrap


def get_scenario(name: str) -> Scenario:
    load_builtin_scenarios()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    load_builtin_scenarios()
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> Tuple[Scenario, ...]:
    load_builtin_scenarios()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def load_builtin_scenarios() -> None:
    """Import every built-in adapter module (idempotent, import-cheap)."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
