"""A deterministic single-tape Turing machine with step/space metering.

The constructors of §6 simulate shape-constructing TMs on the distributed
tape formed by the nodes of a square; this module provides the machine
model itself. Tapes are unbounded in both directions unless a space bound
is set, in which case exceeding it raises (Definition 3 asks for space
``O(f(d))`` — the meter lets tests verify the bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import MachineError

#: Head movements.
LEFT, STAY, RIGHT = -1, 0, 1

#: A transition: (new_state, written_symbol, head_move).
Transition = Tuple[Hashable, Hashable, int]


@dataclass
class TMResult:
    """Outcome of a TM run."""

    accepted: bool
    steps: int
    space: int
    tape: Dict[int, Hashable]
    head: int


class TuringMachine:
    """A deterministic single-tape TM.

    Parameters
    ----------
    transitions:
        Mapping ``(state, symbol) -> (state', symbol', move)``. Missing
        entries mean the machine halts and *rejects* in that configuration
        (the common convention for decider tables).
    start, accept, reject:
        Control states; ``accept``/``reject`` halt immediately.
    blank:
        The blank tape symbol.
    """

    def __init__(
        self,
        transitions: Dict[Tuple[Hashable, Hashable], Transition],
        start: Hashable,
        accept: Hashable,
        reject: Hashable,
        blank: Hashable = "_",
        name: str = "tm",
    ) -> None:
        for (state, _sym), (nstate, _nsym, move) in transitions.items():
            if move not in (LEFT, STAY, RIGHT):
                raise MachineError(f"bad head move in transition from {state!r}")
            if state in (accept, reject):
                raise MachineError("halting states cannot have outgoing transitions")
            del nstate
        self.transitions = dict(transitions)
        self.start = start
        self.accept = accept
        self.reject = reject
        self.blank = blank
        self.name = name

    @property
    def states(self) -> frozenset:
        found = {self.start, self.accept, self.reject}
        for (s, _), (ns, _, _) in self.transitions.items():
            found.add(s)
            found.add(ns)
        return frozenset(found)

    def run(
        self,
        tape_input: Sequence[Hashable],
        max_steps: int = 10_000_000,
        max_space: Optional[int] = None,
    ) -> TMResult:
        """Run on the input written at cells ``0..len-1``, head at 0."""
        tape: Dict[int, Hashable] = {
            i: sym for i, sym in enumerate(tape_input) if sym != self.blank
        }
        visited = set(range(len(tape_input))) or {0}
        state = self.start
        head = 0
        steps = 0
        while state not in (self.accept, self.reject):
            if steps >= max_steps:
                raise MachineError(
                    f"TM {self.name!r} exceeded {max_steps} steps"
                )
            sym = tape.get(head, self.blank)
            trans = self.transitions.get((state, sym))
            if trans is None:
                state = self.reject
                break
            state, write, move = trans
            if write == self.blank:
                tape.pop(head, None)
            else:
                tape[head] = write
            head += move
            visited.add(head)
            if max_space is not None and len(visited) > max_space:
                raise MachineError(
                    f"TM {self.name!r} exceeded space bound {max_space}"
                )
            steps += 1
        return TMResult(state == self.accept, steps, len(visited), tape, head)

    def accepts(self, tape_input: Sequence[Hashable], **kwargs) -> bool:
        """Convenience: run and return acceptance."""
        return self.run(tape_input, **kwargs).accepted


def binary_digits(value: int, width: Optional[int] = None) -> List[str]:
    """MSB-first binary digits of a non-negative integer, zero-padded."""
    if value < 0:
        raise MachineError(f"negative value: {value}")
    bits = bin(value)[2:]
    if width is not None:
        if len(bits) > width:
            raise MachineError(f"{value} does not fit in {width} bits")
        bits = bits.rjust(width, "0")
    return list(bits)
