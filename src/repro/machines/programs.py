"""Hand-written Turing machines used by the shape constructors.

The central one is :func:`binary_less_than_tm`: a genuine comparator TM
deciding ``a < b`` for two equal-width MSB-first binary strings written as
``a # b``. It is the decision core of the pixel-membership machines (e.g.
"pixel index < d" builds the spanning line of Theorem 4's worst-case waste
example).
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.errors import MachineError
from repro.machines.tm import LEFT, RIGHT, Transition, TuringMachine, binary_digits


def encode_comparison(a: int, b: int, width: int) -> List[str]:
    """Tape encoding ``bin(a) # bin(b)`` with both numbers ``width`` wide."""
    return binary_digits(a, width) + ["#"] + binary_digits(b, width)


def binary_less_than_tm() -> TuringMachine:
    """A TM accepting ``a # b`` iff ``a < b`` (equal-width MSB-first).

    Strategy: repeatedly fetch the leftmost unmarked digit of ``a``
    (marking it ``X``), carry it across ``#`` to the leftmost unmarked
    digit of ``b`` (marking it ``Y``): the first differing pair decides;
    all-equal rejects. 9 control states.
    """
    t: dict = {}

    def add(state, sym, nstate, nsym, move):
        key = (state, sym)
        if key in t:
            raise MachineError(f"duplicate transition {key}")
        t[key] = (nstate, nsym, move)

    # find: locate leftmost unmarked digit of a.
    for sym in ("X",):
        add("find", sym, "find", sym, RIGHT)
    add("find", "0", "carry0", "X", RIGHT)
    add("find", "1", "carry1", "X", RIGHT)
    add("find", "#", "equal", "#", RIGHT)  # all of a marked: a == b
    # carry0/carry1: skip to b's region.
    for carry in ("carry0", "carry1"):
        for sym in ("0", "1"):
            add(carry, sym, carry, sym, RIGHT)
        add(carry, "#", f"scan-{carry}", "#", RIGHT)
    # scan: find leftmost unmarked digit of b and compare.
    for carry, digit in (("carry0", "0"), ("carry1", "1")):
        scan = f"scan-{carry}"
        add(scan, "Y", scan, "Y", RIGHT)
        if digit == "0":
            add(scan, "0", "return", "Y", LEFT)   # 0 vs 0: continue
            add(scan, "1", "accept", "Y", RIGHT)  # 0 vs 1: a < b
        else:
            add(scan, "1", "return", "Y", LEFT)   # 1 vs 1: continue
            add(scan, "0", "reject", "Y", RIGHT)  # 1 vs 0: a > b
    # return: rewind to the start of the tape.
    for sym in ("0", "1", "#", "X", "Y"):
        add("return", sym, "return", sym, LEFT)
    add("return", "_", "find", "_", RIGHT)
    # equal: a == b, not strictly less.
    add("equal", "Y", "equal", "Y", RIGHT)
    add("equal", "_", "reject", "_", RIGHT)
    return TuringMachine(t, start="find", accept="accept", reject="reject",
                         name="binary-less-than")


def always_accept_tm() -> TuringMachine:
    """The one-step machine accepting every input (full-square shapes)."""
    return TuringMachine(
        {("s", sym): ("accept", sym, RIGHT) for sym in ("0", "1", "#", "_")},
        start="s",
        accept="accept",
        reject="reject",
        name="always-accept",
    )


def parity_tm() -> TuringMachine:
    """Accepts binary strings (MSB-first) whose last bit is 0 (even values).

    A minimal example machine used in tests of the distributed simulation.
    """
    t: dict = {}
    for sym in ("0", "1"):
        t[("s", sym)] = ("s", sym, RIGHT)
    t[("s", "_")] = ("back", "_", LEFT)
    t[("back", "0")] = ("accept", "0", LEFT)
    t[("back", "1")] = ("reject", "1", LEFT)
    return TuringMachine(t, start="s", accept="accept", reject="reject",
                         name="parity")
