"""Shape-constructing programs: the pixel deciders of Definition 3.

A shape language ``L = (S_1, S_2, ...)`` is defined by a machine that, for
every square dimension ``d`` and pixel index ``i`` (in the zig-zag order of
Figure 7(b)), decides whether pixel ``i`` is on. Two implementations:

* :class:`TMShapeProgram` — a genuine :class:`~repro.machines.tm.TuringMachine`
  run on the encoded input ``(i, d)``; space is metered.
* :class:`PredicateShapeProgram` — a Python predicate with a declared space
  bound, the documented stand-in for arbitrary TMs (DESIGN.md, fidelity
  decisions). The *distributed* simulation machinery is identical for both.

Concrete programs cover the paper's examples: the spanning line (Theorem
4's worst-case waste), the star of Figure 7(c), crosses, frames, and the
colored patterns of Remark 4.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Optional

from repro.errors import MachineError
from repro.geometry.grid import zigzag_index_to_cell
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec
from repro.machines.programs import binary_less_than_tm, encode_comparison
from repro.machines.tm import TuringMachine


class ShapeProgram:
    """Decides pixel membership for every square dimension ``d``."""

    name: str = "shape-program"

    def decide(self, pixel: int, d: int) -> bool:
        """True iff pixel ``pixel`` (zig-zag index) of the ``d x d`` square
        is *on*."""
        raise NotImplementedError

    def space_bound(self, d: int) -> int:
        """Declared working-space bound for one decision (cells)."""
        return d * d


class TMShapeProgram(ShapeProgram):
    """A shape program backed by a real Turing machine.

    ``encoder(pixel, d)`` produces the input tape; the machine's acceptance
    is the pixel's on/off bit. Space is metered on every run and checked
    against :meth:`space_bound`.
    """

    def __init__(
        self,
        machine: TuringMachine,
        encoder: Callable[[int, int], list],
        name: str,
        space_bound_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.machine = machine
        self.encoder = encoder
        self.name = name
        self._space_bound_fn = space_bound_fn
        self.last_space = 0
        self.last_steps = 0

    def decide(self, pixel: int, d: int) -> bool:
        result = self.machine.run(
            self.encoder(pixel, d), max_space=self.space_bound(d)
        )
        self.last_space = result.space
        self.last_steps = result.steps
        return result.accepted

    def space_bound(self, d: int) -> int:
        if self._space_bound_fn is not None:
            return self._space_bound_fn(d)
        return d * d


class PredicateShapeProgram(ShapeProgram):
    """A shape program given as a predicate over grid coordinates.

    The predicate receives ``(x, y, d)`` with ``(x, y)`` the pixel's cell in
    the square's coordinate frame (bottom-left origin) — strictly more
    convenient than the raw zig-zag index and equivalent, since the
    conversion is itself trivially TM-computable in space ``O(log d)``.
    """

    def __init__(
        self,
        predicate: Callable[[int, int, int], bool],
        name: str,
        space_bound_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        self.predicate = predicate
        self.name = name
        self._space_bound_fn = space_bound_fn

    def decide(self, pixel: int, d: int) -> bool:
        if not (0 <= pixel < d * d):
            raise MachineError(f"pixel {pixel} outside {d}x{d} square")
        cell = zigzag_index_to_cell(pixel, d)
        return bool(self.predicate(cell.x, cell.y, d))

    def space_bound(self, d: int) -> int:
        if self._space_bound_fn is not None:
            return self._space_bound_fn(d)
        return max(1, 4 * max(1, math.ceil(math.log2(max(d, 2)))))


class PatternProgram:
    """Remark 4: a program assigning every pixel a color from a finite set.

    Patterns need no connectivity and no release phase; the labeled square
    itself is the output.
    """

    def __init__(
        self,
        color_fn: Callable[[int, int, int], Hashable],
        colors: tuple,
        name: str,
    ) -> None:
        self.color_fn = color_fn
        self.colors = colors
        self.name = name

    def color(self, pixel: int, d: int) -> Hashable:
        cell = zigzag_index_to_cell(pixel, d)
        value = self.color_fn(cell.x, cell.y, d)
        if value not in self.colors:
            raise MachineError(f"color {value!r} outside palette {self.colors!r}")
        return value


# ----------------------------------------------------------------------
# Concrete programs
# ----------------------------------------------------------------------


def line_program() -> TMShapeProgram:
    """Pixels ``0..d-1`` on: a spanning line along the bottom row.

    Backed by the genuine comparator TM (accept iff ``pixel < d``); the
    worst-case waste example of Theorem 4 (``(d-1) d`` off pixels).
    """
    def encoder(pixel: int, d: int) -> list:
        width = max(1, (d * d - 1).bit_length())
        return encode_comparison(pixel, d, width)

    return TMShapeProgram(
        binary_less_than_tm(),
        encoder,
        name="line",
        # Two width-wide operands, the separator, and the head's one-cell
        # excursions past either end of the written region.
        space_bound_fn=lambda d: 2 * max(1, (d * d - 1).bit_length()) + 6,
    )


def full_square_program() -> PredicateShapeProgram:
    """Every pixel on: the square itself is the shape (zero waste)."""
    return PredicateShapeProgram(lambda x, y, d: True, name="full-square")


def cross_program() -> PredicateShapeProgram:
    """Middle row plus middle column."""
    return PredicateShapeProgram(
        lambda x, y, d: x == (d - 1) // 2 or y == (d - 1) // 2, name="cross"
    )


def star_program() -> PredicateShapeProgram:
    """The star-like shape of Figure 7(c): cross plus staircase diagonals.

    Diagonals are thickened into staircases (cells with ``x == y`` or
    ``x == y + 1``, and the anti-diagonal analogue) so the shape is a
    single connected component, as Definition 3 requires.
    """
    def pred(x: int, y: int, d: int) -> bool:
        c = (d - 1) // 2
        return (
            x == c
            or y == c
            or x == y
            or x == y + 1
            or x + y == d - 1
            or x + y == d
        )

    return PredicateShapeProgram(pred, name="star")


def frame_program() -> PredicateShapeProgram:
    """The square's border ring."""
    return PredicateShapeProgram(
        lambda x, y, d: x in (0, d - 1) or y in (0, d - 1), name="frame"
    )


def comb_program() -> PredicateShapeProgram:
    """Every other column plus a bottom spine: maximal-perimeter shape."""
    return PredicateShapeProgram(
        lambda x, y, d: y == 0 or x % 2 == 0, name="comb"
    )


# Kept under its historical name for the package namespace.
checkerboard_with_spine_program = comb_program


def serpentine_program() -> PredicateShapeProgram:
    """A boustrophedon path: even rows fully on, linked by alternating
    end connectors — the connected space-filling curve shape.

    Connected for every ``d >= 1``: row ``y`` (even) joins row ``y + 2``
    through the connector cell at the right end when ``y ≡ 0 (mod 4)`` and
    at the left end when ``y ≡ 2 (mod 4)``.
    """

    def pred(x: int, y: int, d: int) -> bool:
        if y % 2 == 0:
            return True
        return x == (d - 1) if y % 4 == 1 else x == 0

    return PredicateShapeProgram(pred, name="serpentine")


def diamond_program() -> PredicateShapeProgram:
    """The L1 ball around the center: ``|x - c| + |y - c| <= c``.

    Connected for every ``d`` (an L1 ball is grid-connected); for odd ``d``
    its size is ``2c² + 2c + 1`` with ``c = (d - 1) / 2``.
    """

    def pred(x: int, y: int, d: int) -> bool:
        c = (d - 1) // 2
        return abs(x - c) + abs(y - c) <= c

    return PredicateShapeProgram(pred, name="diamond")


def stripes_program(k: int = 2) -> PredicateShapeProgram:
    """Columns at multiples of ``k`` plus a bottom spine.

    The column test ``x ≡ 0 (mod k)`` is decided by the genuine
    ``k``-state divisibility machine
    (:func:`~repro.machines.arithmetic.divisible_by_tm`); the predicate
    here mirrors it exactly (cross-validated in tests).
    """
    if k < 1:
        raise MachineError(f"stripe period must be positive: {k}")

    def pred(x: int, y: int, d: int) -> bool:
        return y == 0 or x % k == 0

    return PredicateShapeProgram(pred, name=f"stripes-{k}")


def ring_pattern_program(colors: int = 3) -> PatternProgram:
    """Concentric rings colored cyclically (a Remark 4 pattern)."""
    palette = tuple(range(colors))

    def color(x: int, y: int, d: int) -> int:
        return min(x, y, d - 1 - x, d - 1 - y) % colors

    return PatternProgram(color, palette, name=f"rings-{colors}")


def checkerboard_pattern_program() -> PatternProgram:
    """The two-colored parity pattern (the canonical Remark 4 example:
    "every even pixel on and every odd pixel off" — valid as a *pattern*
    precisely because patterns need no connectivity)."""
    return PatternProgram(
        lambda x, y, d: (x + y) % 2, (0, 1), name="checkerboard"
    )


def sierpinski_pattern_program() -> PatternProgram:
    """The Sierpinski-triangle pattern: cell on iff ``x AND y == 0``.

    A classic TM-computable pattern (one pass over the two coordinates'
    bits); rendered as a 2-color pattern since its on-cells are not grid
    connected.
    """
    return PatternProgram(
        lambda x, y, d: 1 if (x & y) == 0 else 0, (0, 1), name="sierpinski"
    )


def gradient_pattern_program(colors: int = 4) -> PatternProgram:
    """Vertical color bands: column ``x`` gets color ``x * colors // d``."""
    palette = tuple(range(colors))

    def color(x: int, y: int, d: int) -> int:
        return min(colors - 1, x * colors // d)

    return PatternProgram(color, palette, name=f"gradient-{colors}")


def expected_shape(program: ShapeProgram, d: int) -> Shape:
    """Evaluate all pixels and build the expected connected shape.

    Raises :class:`~repro.errors.InvalidShapeError` when the on-pixels are
    not connected — the validity check of Definition 3.
    """
    cells = [
        zigzag_index_to_cell(i, d)
        for i in range(d * d)
        if program.decide(i, d)
    ]
    return Shape.from_cells(cells)


def expected_pattern(program: PatternProgram, d: int) -> Dict[Vec, Hashable]:
    """Evaluate a pattern program into a cell -> color mapping."""
    return {
        zigzag_index_to_cell(i, d): program.color(i, d) for i in range(d * d)
    }


# ----------------------------------------------------------------------
# Catalogues (the named shapes/patterns exposed by the CLI and the
# ``shape`` / ``pattern`` / ``universal`` scenarios)
# ----------------------------------------------------------------------

#: Named shape programs selectable from the experiment layer and the CLI.
SHAPE_CATALOGUE: Dict[str, Callable[[], ShapeProgram]] = {
    "line": line_program,
    "full-square": full_square_program,
    "cross": cross_program,
    "star": star_program,
    "frame": frame_program,
    "comb": comb_program,
    "serpentine": serpentine_program,
    "diamond": diamond_program,
    "stripes": stripes_program,
}

#: Named pattern programs selectable from the experiment layer and the CLI.
PATTERN_CATALOGUE: Dict[str, Callable[[], PatternProgram]] = {
    "rings": ring_pattern_program,
    "checkerboard": checkerboard_pattern_program,
    "sierpinski": sierpinski_pattern_program,
    "gradient": gradient_pattern_program,
}
