"""Turing machines and shape-constructing programs (Definition 3, §6.3).

* :mod:`repro.machines.tm` — a deterministic single-tape TM substrate with
  step and space metering.
* :mod:`repro.machines.programs` — hand-written machines used by the
  constructors (binary comparator, always-accept, etc.).
* :mod:`repro.machines.shape_programs` — shape-constructing programs: the
  ``(pixel i, dimension d) -> on/off`` deciders of Definition 3, either
  backed by a genuine TM or by a space-metered predicate (the documented
  stand-in for arbitrary TMs), plus the concrete shape languages used in
  the paper's examples (spanning line, star of Figure 7(c), etc.).
"""

from repro.machines.tm import TuringMachine, TMResult, Transition
from repro.machines.programs import (
    always_accept_tm,
    binary_less_than_tm,
    encode_comparison,
    parity_tm,
)
from repro.machines.arithmetic import (
    SqrtTrace,
    binary_equal_tm,
    binary_increment_tm,
    decode_tape_binary,
    divisible_by_tm,
    increment_binary_sequence,
    leader_square_root,
    successive_squares_sqrt,
)
from repro.machines.shape_programs import (
    PatternProgram,
    PredicateShapeProgram,
    ShapeProgram,
    TMShapeProgram,
    checkerboard_pattern_program,
    checkerboard_with_spine_program,
    comb_program,
    cross_program,
    diamond_program,
    expected_pattern,
    expected_shape,
    frame_program,
    full_square_program,
    gradient_pattern_program,
    line_program,
    ring_pattern_program,
    serpentine_program,
    sierpinski_pattern_program,
    star_program,
    stripes_program,
)

__all__ = [
    "TuringMachine",
    "TMResult",
    "Transition",
    "binary_less_than_tm",
    "always_accept_tm",
    "parity_tm",
    "encode_comparison",
    # arithmetic machines (§6.2 leader computations)
    "binary_increment_tm",
    "binary_equal_tm",
    "divisible_by_tm",
    "decode_tape_binary",
    "increment_binary_sequence",
    "SqrtTrace",
    "successive_squares_sqrt",
    "leader_square_root",
    # shape / pattern programs
    "ShapeProgram",
    "TMShapeProgram",
    "PredicateShapeProgram",
    "PatternProgram",
    "line_program",
    "full_square_program",
    "cross_program",
    "star_program",
    "frame_program",
    "checkerboard_with_spine_program",
    "comb_program",
    "serpentine_program",
    "diamond_program",
    "stripes_program",
    "ring_pattern_program",
    "checkerboard_pattern_program",
    "sierpinski_pattern_program",
    "gradient_pattern_program",
    "expected_shape",
    "expected_pattern",
]
