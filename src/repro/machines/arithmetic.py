"""Binary arithmetic on tapes: the leader's §6 computations, made concrete.

§6.2 describes the leader computing ``√n`` on its line: *"the leader can
execute one after the other the multiplications 1·1, 2·2, 3·3, … in binary
until the result becomes equal to n. Each of these operations can be
executed in the initial log n space of the line of the leader. The time
needed, though exponential in the binary representation of n, is still
linear in the population size n."*

This module provides that computation with explicit cost metering
(:func:`successive_squares_sqrt`), plus small genuine Turing machines for
the primitive tape operations (increment, equality, divisibility) used by
shape programs and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.errors import MachineError
from repro.machines.tm import (
    LEFT,
    RIGHT,
    TMResult,
    TuringMachine,
    binary_digits,
)


def binary_increment_tm() -> TuringMachine:
    """A TM replacing an MSB-first binary number with its successor.

    Walks to the least significant digit, then carries leftwards: ``1``
    becomes ``0`` while carrying, the first ``0`` becomes ``1``. A carry
    falling off the left end writes a new leading ``1`` (the tape grows by
    one cell, exactly like the leader's line growing in §6.1). Always
    accepts; the result is on the tape.
    """
    t: Dict = {}
    for sym in ("0", "1"):
        t[("seek", sym)] = ("seek", sym, RIGHT)
    t[("seek", "_")] = ("carry", "_", LEFT)
    t[("carry", "1")] = ("carry", "0", LEFT)
    t[("carry", "0")] = ("rewind", "1", LEFT)
    t[("carry", "_")] = ("accept", "1", RIGHT)  # overflow: new MSB
    for sym in ("0", "1"):
        t[("rewind", sym)] = ("rewind", sym, LEFT)
    t[("rewind", "_")] = ("accept", "_", RIGHT)
    return TuringMachine(
        t, start="seek", accept="accept", reject="reject", name="binary-increment"
    )


def binary_equal_tm() -> TuringMachine:
    """A TM accepting ``a # b`` iff the two equal-width numbers are equal.

    The zig-zag marking scheme of the comparator machine
    (:func:`~repro.machines.programs.binary_less_than_tm`), specialized to
    equality: any differing pair rejects, full agreement accepts.
    """
    t: Dict = {}
    t[("find", "X")] = ("find", "X", RIGHT)
    t[("find", "0")] = ("carry0", "X", RIGHT)
    t[("find", "1")] = ("carry1", "X", RIGHT)
    t[("find", "#")] = ("accept", "#", RIGHT)  # all digits matched
    for carry in ("carry0", "carry1"):
        for sym in ("0", "1"):
            t[(carry, sym)] = (carry, sym, RIGHT)
        t[(carry, "#")] = (f"scan-{carry}", "#", RIGHT)
    for carry, digit in (("carry0", "0"), ("carry1", "1")):
        scan = f"scan-{carry}"
        t[(scan, "Y")] = (scan, "Y", RIGHT)
        t[(scan, digit)] = ("return", "Y", LEFT)
        other = "1" if digit == "0" else "0"
        t[(scan, other)] = ("reject", other, RIGHT)
    for sym in ("0", "1", "#", "X", "Y"):
        t[("return", sym)] = ("return", sym, LEFT)
    t[("return", "_")] = ("find", "_", RIGHT)
    return TuringMachine(
        t, start="find", accept="accept", reject="reject", name="binary-equal"
    )


def divisible_by_tm(k: int) -> TuringMachine:
    """A TM accepting MSB-first binary numbers divisible by ``k``.

    One left-to-right pass tracking the value modulo ``k`` in the control
    state (``m`` goes to ``2m + digit mod k``); ``k + 2`` states, constant
    workspace beyond the input. The machine behind the periodic stripe
    shapes.
    """
    if k < 1:
        raise MachineError(f"divisor must be positive: {k}")
    t: Dict = {}
    for m in range(k):
        for digit in ("0", "1"):
            t[((("mod", m)), digit)] = (
                ("mod", (2 * m + int(digit)) % k),
                digit,
                RIGHT,
            )
        t[(("mod", m), "_")] = (
            "accept" if m == 0 else "reject",
            "_",
            RIGHT,
        )
    return TuringMachine(
        t,
        start=("mod", 0),
        accept="accept",
        reject="reject",
        name=f"divisible-by-{k}",
    )


def decode_tape_binary(result: TMResult) -> int:
    """Read the MSB-first binary number left on a TM's tape."""
    digit_cells = sorted(
        i for i, sym in result.tape.items() if sym in ("0", "1")
    )
    if not digit_cells:
        raise MachineError("no binary digits on the tape")
    lo, hi = digit_cells[0], digit_cells[-1]
    value = 0
    for i in range(lo, hi + 1):
        sym = result.tape.get(i)
        if sym not in ("0", "1"):
            raise MachineError(f"non-digit {sym!r} inside the number")
        value = 2 * value + int(sym)
    return value


# ----------------------------------------------------------------------
# §6.2: sqrt by successive squares, with explicit cost metering
# ----------------------------------------------------------------------


@dataclass
class SqrtTrace:
    """Cost record of the leader's √n computation (§6.2).

    ``bit_ops`` counts elementary tape-cell operations (one per binary
    digit touched); ``space_cells`` is the widest tape ever used. The
    paper's claim: time exponential in ``|bin(n)|`` yet linear in ``n``,
    within the ``O(log n)`` line.
    """

    n: int
    root: int
    bit_ops: int
    space_cells: int
    multiplications: int


def successive_squares_sqrt(n: int) -> SqrtTrace:
    """Compute ``√n`` the way the §6.2 leader does, metering the cost.

    Squares are enumerated incrementally — ``(k+1)² = k² + 2k + 1``, one
    binary addition per candidate, which is exactly "execute one after the
    other the multiplications 1·1, 2·2, …" with the standard running-sum
    optimization; each addition is charged one bit-op per digit of the
    operands. Raises :class:`MachineError` when ``n`` is not a perfect
    square (the paper's constructions only call this for ``n = d²``).
    """
    if n < 1:
        raise MachineError(f"need n >= 1: {n}")
    width = max(1, n.bit_length())
    bit_ops = 0
    k = 1
    square = 1
    multiplications = 0
    while square < n:
        # One addition: square += 2k + 1, charged per digit touched.
        addend = 2 * k + 1
        bit_ops += max(square.bit_length(), addend.bit_length()) + 1
        square += addend
        k += 1
        multiplications += 1
        # Comparing against n costs one pass over the operand width.
        bit_ops += width
    if square != n:
        raise MachineError(f"{n} is not a perfect square")
    # Two numbers (running square and k) plus n itself live on the line.
    space_cells = 3 * width + 2
    return SqrtTrace(n, k, bit_ops, space_cells, multiplications)


def leader_square_root(n: int) -> int:
    """The √n value the §6.2 leader obtains (convenience wrapper)."""
    return successive_squares_sqrt(n).root


def increment_binary_sequence(
    value: int, count: int, width: Optional[int] = None
) -> List[int]:
    """Run the increment TM ``count`` times from ``value``; the results.

    Used by tests to exercise the genuine machine over ranges (including
    carries that grow the tape).
    """
    machine = binary_increment_tm()
    out: List[int] = []
    current = value
    for _ in range(count):
        tape: List[Hashable] = binary_digits(current, width)
        result = machine.run(tape)
        if not result.accepted:  # pragma: no cover - machine always accepts
            raise MachineError("increment machine rejected")
        current = decode_tape_binary(result)
        out.append(current)
    return out
