"""Scenario adapters for the §5 counting suite (``repro.population``).

Registered into ``repro.experiments.registry``; see that module for the
adapter contract. The ``counting`` scenario preserves the historical CLI
semantics exactly: ``trials`` independent executions whose per-trial seeds
are drawn from one ``random.Random(seed)`` stream, aggregated into mean
estimate and success rate.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.core.simulator import StopReason
from repro.experiments.registry import Param, ScenarioOutcome, scenario
from repro.population.counting import run_counting
from repro.population.counting_uid import run_simple_uid, run_uid_counting


@scenario(
    name="counting",
    summary="Theorem 1 terminating counting (leader, mean over trials)",
    params=(
        Param("n", "int", 64, minimum=2, help="population size"),
        Param("b", "int", 4, help="the leader's head start"),
        Param(
            "trials", "int", 20, minimum=1,
            help="independent executions to average",
        ),
    ),
    tags=("counting", "population", "terminating"),
    covers=("repro.population.counting.run_counting",),
)
def _run_counting(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    n, b, trials = params["n"], params["b"], params["trials"]
    rng = random.Random(seed)
    successes = 0
    estimates = []
    effective = 0
    raw = 0
    for _ in range(trials):
        result = run_counting(n, b=b, seed=rng.randrange(2**31))
        successes += int(result.success)
        estimates.append(result.estimate)
        effective += result.effective_interactions
        raw += result.raw_interactions
    mean = sum(estimates) / len(estimates)
    return ScenarioOutcome(
        metrics={
            "n": n,
            "b": b,
            "trials": trials,
            "mean_estimate": mean,
            "min_estimate": min(estimates),
            "estimate_ratio": mean / n,
            "successes": successes,
            "success_rate": successes / trials,
        },
        events=effective,
        raw_steps=raw,
        stop_reason=StopReason.PREDICATE,  # every trial halts by Theorem 1
    )


def _uid_outcome(result) -> ScenarioOutcome:
    return ScenarioOutcome(
        metrics={
            "n": result.n,
            "b": result.b,
            "halter_uid": result.halter_uid,
            "max_uid": result.max_uid,
            "halter_is_max": result.halter_is_max,
            "output": result.output,
            "output_is_upper_bound": result.output_is_upper_bound,
        },
        events=result.interactions,
        stop_reason=StopReason.PREDICATE,
    )


@scenario(
    name="uid-simple",
    summary="§5.3.1 simple unique-id counting (no leader)",
    params=(
        Param("n", "int", 64, help="population size"),
        Param("b", "int", 2, help="halting head start"),
    ),
    tags=("counting", "population", "uid"),
    covers=("repro.population.counting_uid.run_simple_uid",),
)
def _run_uid_simple(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    return _uid_outcome(run_simple_uid(params["n"], b=params["b"], seed=seed))


@scenario(
    name="uid-counting",
    summary="§5.3.2 Protocol 3: unique-id counting (Theorem 3)",
    params=(
        Param("n", "int", 64, help="population size"),
        Param("b", "int", 4, help="halting head start"),
    ),
    tags=("counting", "population", "uid"),
    covers=("repro.population.counting_uid.run_uid_counting",),
)
def _run_uid_counting(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    return _uid_outcome(run_uid_counting(params["n"], b=params["b"], seed=seed))
