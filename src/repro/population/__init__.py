"""Population-protocol substrate and the §5 counting protocols.

The protocols of §5 are presented by the paper in the classical population
protocol setting: no ports, no geometry, a uniform random scheduler that
selects one of the ``n(n-1)/2`` node pairs per step. This package provides
that substrate (:mod:`repro.population.model`) and the counting protocols:

* :class:`~repro.population.counting.CountingUpperBound` — §5.1, Theorem 1.
* :mod:`repro.population.leaderless` — the §5.2 experiments supporting
  Conjecture 1.
* :class:`~repro.population.counting_uid.SimpleUIDCounting` — §5.3.1,
  Theorem 2.
* :class:`~repro.population.counting_uid.UIDCounting` — Protocol 3, §5.3.2,
  Theorem 3.
"""

from repro.population.model import (
    PairwiseProtocol,
    PopulationResult,
    PopulationSimulator,
)
from repro.population.counting import (
    CountingResult,
    CountingUpperBound,
    run_counting,
)
from repro.population.counting_uid import (
    SimpleUIDCounting,
    UIDCounting,
    UIDResult,
)
from repro.population.leaderless import (
    LeaderlessObservation,
    early_termination_experiment,
    state_multiplicity_experiment,
)

__all__ = [
    "PairwiseProtocol",
    "PopulationSimulator",
    "PopulationResult",
    "CountingUpperBound",
    "CountingResult",
    "run_counting",
    "SimpleUIDCounting",
    "UIDCounting",
    "UIDResult",
    "LeaderlessObservation",
    "early_termination_experiment",
    "state_multiplicity_experiment",
]
