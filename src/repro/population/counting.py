"""The Counting-Upper-Bound protocol (§5.1, Theorem 1).

A unique leader keeps two counters: ``r0`` counts the ``q0`` nodes it has
converted to ``q1`` and ``r1`` counts the ``q1`` nodes it has converted to
``q2``. ``r0`` gets an initial head start of ``b`` (a constant); the
protocol halts the first time ``r0 == r1``. Theorem 1: it halts in *every*
execution, and with probability at least ``1 - 1/n^(b-2)`` it holds that
``r0 >= n/2`` on halting.

Two exact simulators are provided:

* :class:`CountingPopulation` — the protocol on the raw pair scheduler
  (a :class:`~repro.population.model.PairwiseProtocol`).
* :class:`CountingUpperBound` — an accelerated sampler of the identical
  process. Only leader interactions are effective; under the uniform
  scheduler the time between leader interactions is Geometric(2/n) and the
  leader's partner is uniform among the other ``n - 1`` nodes, so the urn
  process (i, j, k) = (#q0, #q1, #q2) is sampled directly. Both simulators
  have exactly the same law; tests cross-validate them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import TerminationError
from repro.population.model import (
    PairwiseProtocol,
    PopulationSimulator,
    geometric_skip,
)


@dataclass
class LeaderState:
    """The unique leader: two unbounded counters (the paper grants the
    leader memory of order n in the §5.1 presentation)."""

    r0: int
    r1: int
    halted: bool = False


@dataclass
class CountingResult:
    """Outcome of a counting run."""

    n: int
    b: int
    r0: int
    r1: int
    effective_interactions: int
    raw_interactions: int

    @property
    def success(self) -> bool:
        """Theorem 1's guarantee: the leader counted at least half."""
        return 2 * self.r0 >= self.n

    @property
    def estimate(self) -> int:
        """The count the leader outputs (r0; n/2 <= r0 <= n - 1 w.h.p.)."""
        return self.r0

    @property
    def upper_bound(self) -> int:
        """The w.h.p. upper bound on n the leader can report (2 * r0)."""
        return 2 * self.r0


class CountingPopulation(PairwiseProtocol):
    """Raw-scheduler implementation of Counting-Upper-Bound.

    Node states are ``"q0"``, ``"q1"``, ``"q2"`` and one
    :class:`LeaderState`. The initial head start converts ``b`` nodes to
    ``q1`` (the paper's preprocessing step); populations with ``n - 1 < b``
    get the largest possible head start.
    """

    def __init__(self, b: int = 4) -> None:
        if b < 1:
            raise TerminationError(f"head start b must be >= 1: {b}")
        self.b = b

    def initial_states(self, n: int, rng: random.Random) -> List[object]:
        head = min(self.b, n - 1)
        states: List[object] = [LeaderState(r0=head, r1=0)]
        states.extend("q1" for _ in range(head))
        states.extend("q0" for _ in range(n - 1 - head))
        return states

    def interact(self, a, b, rng) -> Tuple[object, object]:
        if isinstance(a, LeaderState):
            return self._leader(a, b)
        if isinstance(b, LeaderState):
            second, first = self._leader(b, a)
            return first, second
        return a, b  # non-leader pairs are ineffective

    @staticmethod
    def _leader(leader: LeaderState, other) -> Tuple[object, object]:
        if leader.halted:
            return leader, other
        if leader.r0 == leader.r1:
            leader.halted = True
            return leader, other
        if other == "q0":
            leader.r0 += 1
            return leader, "q1"
        if other == "q1":
            leader.r1 += 1
            if leader.r0 == leader.r1:
                leader.halted = True
            return leader, "q2"
        return leader, other

    def halted(self, state) -> bool:
        return isinstance(state, LeaderState) and state.halted


class CountingUpperBound:
    """Accelerated exact sampler of the Counting-Upper-Bound process.

    Tracks the urn counts ``i = #q0``, ``j = #q1`` (and implicitly
    ``k = #q2``) plus the leader counters, sampling one *leader interaction*
    at a time and accounting for the skipped raw steps exactly.
    """

    def __init__(self, n: int, b: int = 4, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> None:
        if n < 2:
            raise TerminationError("counting needs at least 2 nodes")
        self.n = n
        self.b = min(b, n - 1)
        self.rng = rng if rng is not None else random.Random(seed)

    def run(self, max_effective: Optional[int] = None) -> CountingResult:
        """Run to termination (guaranteed by Theorem 1's halting argument).

        ``max_effective`` optionally caps effective interactions (the halt
        is guaranteed within ``2(n-1)`` of them, so the default cap is
        slightly above that and reaching it raises).
        """
        n, rng = self.n, self.rng
        cap = max_effective if max_effective is not None else 2 * n + 10
        r0, r1 = self.b, 0
        i = n - 1 - self.b  # #q0
        j = self.b          # #q1
        k = 0               # #q2
        effective = 0
        raw = 0
        # Probability a raw step involves the leader: (n-1) / C(n, 2).
        p_leader = 2.0 / n
        while True:
            # Time to the next leader interaction (raw steps, exact in law).
            raw += geometric_skip(rng, p_leader)
            # Halt check happens at the leader's next interaction.
            if r0 == r1:
                return CountingResult(n, self.b, r0, r1, effective, raw)
            # The partner is uniform among the n - 1 non-leader nodes.
            pick = rng.randrange(n - 1)
            if pick < i:
                i -= 1
                j += 1
                r0 += 1
                effective += 1
            elif pick < i + j:
                j -= 1
                k += 1
                r1 += 1
                effective += 1
                if r0 == r1:
                    return CountingResult(n, self.b, r0, r1, effective, raw)
            # else: a q2 — ineffective, but still a raw leader interaction.
            if effective > cap:
                raise TerminationError(
                    "counting exceeded its effective-interaction cap; "
                    "this contradicts Theorem 1's halting argument"
                )


def run_counting(
    n: int,
    b: int = 4,
    seed: Optional[int] = None,
    raw_scheduler: bool = False,
) -> CountingResult:
    """Run one Counting-Upper-Bound execution and return its result.

    ``raw_scheduler`` selects the unaccelerated pairwise simulator (slower,
    same law) — useful for cross-validation.
    """
    if not raw_scheduler:
        return CountingUpperBound(n, b, seed=seed).run()
    sim = PopulationSimulator(CountingPopulation(b), n, seed=seed)
    res = sim.run(max_interactions=200 * n * n + 100_000, require_halt=True)
    leader = next(s for s in sim.states if isinstance(s, LeaderState))
    return CountingResult(
        n, min(b, n - 1), leader.r0, leader.r1, leader.r0 + leader.r1, res.interactions
    )


def estimate_quality(
    ns: List[int],
    b: int = 4,
    trials: int = 20,
    seed: int = 0,
) -> List[Tuple[int, float, float, float]]:
    """Remark 2 experiment: how close is the estimate r0 to n?

    Returns ``(n, mean r0/n, min r0/n, success rate)`` per population size.
    The paper reports estimates "always close to (9/10)n and usually
    higher" for populations up to 1000 nodes.
    """
    rows = []
    rng = random.Random(seed)
    for n in ns:
        ratios = []
        successes = 0
        for _ in range(trials):
            res = CountingUpperBound(n, b, rng=rng).run()
            ratios.append(res.r0 / n)
            successes += int(res.success)
        rows.append(
            (n, sum(ratios) / len(ratios), min(ratios), successes / trials)
        )
    return rows
