"""Counting with unique ids and no leader (§5.3, Theorems 2 and 3).

* :class:`SimpleUIDCounting` — the feasibility protocol of §5.3.1: every
  node remembers the id sequence of its first ``b`` interactions and halts
  when a later window of ``b`` consecutive interactions repeats it exactly;
  it then outputs the number of distinct ids it has met. Correct w.h.p.,
  expected termination time ``b(n-1)^b = Theta(n^b)`` (Theorem 2).
* :class:`UIDCounting` — Protocol 3: every node simulates the §5.1 leader,
  deactivating itself whenever it touches evidence of a larger id, so that
  only the maximum id survives; when a node halts, w.h.p. it is ``u_max``
  and its output ``2 * count1`` is an upper bound on ``n`` (Theorem 3).

A note on Protocol 3's pseudocode: lines 5-9 (first marking) and lines
13-19 (second marking) must be exclusive branches of the same interaction;
executed sequentially as printed, a first meeting would be immediately
followed by a second marking in the same interaction, collapsing the two
counters. We implement them as ``elif`` branches (first meeting XOR second
meeting), matching the protocol's informal description.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.errors import TerminationError
from repro.population.model import PairwiseProtocol, PopulationSimulator


@dataclass
class UIDResult:
    """Outcome of a unique-id counting run."""

    n: int
    b: int
    halter_uid: int
    max_uid: int
    output: int
    interactions: int

    @property
    def halter_is_max(self) -> bool:
        return self.halter_uid == self.max_uid

    @property
    def output_is_upper_bound(self) -> bool:
        return self.output >= self.n

    @property
    def success(self) -> bool:
        """Theorem 3's guarantee (for the simple protocol: exact count)."""
        return self.output_is_upper_bound


# ----------------------------------------------------------------------
# §5.3.1 — the simple repeated-window protocol
# ----------------------------------------------------------------------


@dataclass
class SimpleUIDState:
    uid: int
    first_window: List[int] = field(default_factory=list)
    current_window: List[int] = field(default_factory=list)
    met: Set[int] = field(default_factory=set)
    halted: bool = False

    def observe(self, other_uid: int, b: int) -> None:
        if self.halted:
            return
        self.met.add(other_uid)
        if len(self.first_window) < b:
            self.first_window.append(other_uid)
            return
        self.current_window.append(other_uid)
        if len(self.current_window) == b:
            if self.current_window == self.first_window:
                self.halted = True
            else:
                self.current_window.clear()

    @property
    def count(self) -> int:
        """|A_u|: distinct ids met, plus the node itself."""
        return len(self.met) + 1


class SimpleUIDCounting(PairwiseProtocol):
    """The §5.3.1 protocol; ids are a random permutation of ``0..n-1``."""

    def __init__(self, b: int = 2) -> None:
        if b < 1:
            raise TerminationError(f"window length b must be >= 1: {b}")
        self.b = b

    def initial_states(self, n: int, rng: random.Random) -> List[SimpleUIDState]:
        uids = list(range(n))
        rng.shuffle(uids)
        return [SimpleUIDState(uid) for uid in uids]

    def interact(self, a: SimpleUIDState, b: SimpleUIDState, rng):
        a.observe(b.uid, self.b)
        b.observe(a.uid, self.b)
        return a, b

    def halted(self, state: SimpleUIDState) -> bool:
        return state.halted


def run_simple_uid(
    n: int, b: int = 2, seed: Optional[int] = None, max_interactions: int = 50_000_000
) -> UIDResult:
    """One run of the §5.3.1 protocol; raises if the budget is exhausted."""
    sim = PopulationSimulator(SimpleUIDCounting(b), n, seed=seed)
    res = sim.run(max_interactions=max_interactions, require_halt=True)
    assert res.halted_index is not None
    halter = sim.states[res.halted_index]
    max_uid = max(s.uid for s in sim.states)
    return UIDResult(n, b, halter.uid, max_uid, halter.count, res.interactions)


# ----------------------------------------------------------------------
# §5.3.2 — Protocol 3
# ----------------------------------------------------------------------


@dataclass
class UIDNodeState:
    """Per-node variables of Protocol 3 (initialization as in the paper)."""

    uid: int
    belongs: Optional[int] = None
    marked: int = 0
    count1: int = 0
    count2: int = 0
    active: bool = True
    halted: bool = False


class UIDCounting(PairwiseProtocol):
    """Protocol 3: leaderless counting with unique ids (Theorem 3)."""

    def __init__(self, b: int = 4) -> None:
        if b < 1:
            raise TerminationError(f"head start b must be >= 1: {b}")
        self.b = b

    def initial_states(self, n: int, rng: random.Random) -> List[UIDNodeState]:
        uids = list(range(n))
        rng.shuffle(uids)
        return [UIDNodeState(uid) for uid in uids]

    def interact(self, a: UIDNodeState, b: UIDNodeState, rng):
        # The pseudocode is written for the ordered pair with id_u > id_v.
        if a.uid > b.uid:
            self._ordered(a, b)
        else:
            self._ordered(b, a)
        return a, b

    def _ordered(self, u: UIDNodeState, v: UIDNodeState) -> None:
        if u.halted or v.halted:
            return
        if v.active:
            v.active = False
        if not u.active:
            return
        if v.belongs is None or v.belongs < u.uid:
            # First meeting: mark v once and claim it.
            v.belongs = u.uid
            v.marked = 1
            u.count1 += 1
        elif v.belongs > u.uid:
            # v carries evidence of a larger id: u stops counting.
            u.active = False
        elif v.belongs == u.uid and v.marked == 1 and u.count1 >= self.b:
            # Second meeting (only counted after the b head start).
            v.marked = 2
            u.count2 += 1
            if u.count1 == u.count2:
                u.halted = True

    def halted(self, state: UIDNodeState) -> bool:
        return state.halted


def run_uid_counting(
    n: int, b: int = 4, seed: Optional[int] = None, max_interactions: int = 500_000_000
) -> UIDResult:
    """One run of Protocol 3; raises if the budget is exhausted."""
    sim = PopulationSimulator(UIDCounting(b), n, seed=seed)
    res = sim.run(max_interactions=max_interactions, require_halt=True)
    assert res.halted_index is not None
    halter = sim.states[res.halted_index]
    max_uid = max(s.uid for s in sim.states)
    return UIDResult(n, b, halter.uid, max_uid, 2 * halter.count1, res.interactions)


def uid_success_rate(
    ns: List[int], b: int = 4, trials: int = 20, seed: int = 0
) -> List[Tuple[int, float, float, float]]:
    """Theorem 3 experiment: ``(n, P[halter is max], P[2*count1 >= n],
    mean interactions)`` per population size."""
    rows = []
    rng = random.Random(seed)
    for n in ns:
        is_max = 0
        bound_ok = 0
        total_steps = 0
        for t in range(trials):
            res = run_uid_counting(n, b, seed=rng.randrange(2**31))
            is_max += int(res.halter_is_max)
            bound_ok += int(res.output_is_upper_bound)
            total_steps += res.interactions
        rows.append((n, is_max / trials, bound_ok / trials, total_steps / trials))
    return rows
