"""Classical population-protocol substrate (no geometry).

"In every step, a uniform random scheduler selects equiprobably one of the
``n(n-1)/2`` possible node pairs, and the selected nodes interact and update
their states according to the transition function" (§5.1). The substrate is
deliberately minimal: node states are arbitrary Python objects owned by the
protocol, pairs are unordered, and the simulator counts every raw step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import TerminationError

S = TypeVar("S")


class PairwiseProtocol(Generic[S]):
    """A population protocol over node states of type ``S``.

    Subclasses implement :meth:`interact`, mutating/replacing the two
    states, and :meth:`halted` for termination detection. States may be
    mutable objects (e.g. the leader's counters); the simulator treats them
    opaquely.
    """

    def initial_states(self, n: int, rng: random.Random) -> List[S]:
        """The initial configuration for a population of size ``n``."""
        raise NotImplementedError

    def interact(self, a: S, b: S, rng: random.Random) -> Tuple[S, S]:
        """Apply the transition to an unordered pair, returning new states.

        ``rng`` is provided for protocols needing initialization randomness
        (e.g. unique-id assignment); transition functions themselves are
        deterministic in all paper protocols.
        """
        raise NotImplementedError

    def halted(self, state: S) -> bool:
        """True iff a node in this state has terminated."""
        return False


@dataclass
class PopulationResult:
    """Outcome of a population run."""

    n: int
    interactions: int
    halted_index: Optional[int]
    states: Sequence[object]

    @property
    def terminated(self) -> bool:
        return self.halted_index is not None


class PopulationSimulator(Generic[S]):
    """Uniform-random pair scheduler over a population.

    Every raw step selects one unordered pair uniformly from the
    ``n(n-1)/2`` possibilities; the run stops when any node halts, when an
    optional predicate fires, or when the step budget runs out.
    """

    def __init__(
        self,
        protocol: PairwiseProtocol[S],
        n: int,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n < 2:
            raise TerminationError("a population needs at least 2 nodes")
        self.protocol = protocol
        self.n = n
        self.rng = rng if rng is not None else random.Random(seed)
        self.states: List[S] = protocol.initial_states(n, self.rng)
        if len(self.states) != n:
            raise TerminationError("protocol returned wrong number of states")
        self.interactions = 0

    def step(self) -> Tuple[int, int]:
        """One raw scheduler step; returns the interacting pair's indices."""
        rng = self.rng
        i = rng.randrange(self.n)
        j = rng.randrange(self.n - 1)
        if j >= i:
            j += 1
        a, b = self.protocol.interact(self.states[i], self.states[j], rng)
        self.states[i] = a
        self.states[j] = b
        self.interactions += 1
        return i, j

    def first_halted(self) -> Optional[int]:
        """Index of a halted node, if any."""
        for idx, s in enumerate(self.states):
            if self.protocol.halted(s):
                return idx
        return None

    def run(
        self,
        max_interactions: int = 100_000_000,
        until: Optional[Callable[[List[S]], bool]] = None,
        require_halt: bool = False,
    ) -> PopulationResult:
        """Run until some node halts / the predicate fires / budget is hit.

        Both stop conditions are checked against the *initial* configuration
        before the first step: a population that starts with a halted node
        terminates immediately with ``interactions == 0``. (Detection used
        to depend on the scheduler happening to select the halted node.)
        """
        protocol = self.protocol
        halted = self.first_halted()
        if halted is not None:
            return PopulationResult(self.n, self.interactions, halted, self.states)
        if until is not None and until(self.states):
            return PopulationResult(self.n, self.interactions, None, self.states)
        for _ in range(max_interactions):
            i, j = self.step()
            if protocol.halted(self.states[i]) or protocol.halted(self.states[j]):
                halted = i if protocol.halted(self.states[i]) else j
                return PopulationResult(self.n, self.interactions, halted, self.states)
            if until is not None and until(self.states):
                return PopulationResult(self.n, self.interactions, None, self.states)
        if require_halt:
            raise TerminationError(
                f"population did not halt within {max_interactions} interactions"
            )
        return PopulationResult(self.n, self.interactions, None, self.states)


# Canonical implementation lives in repro.core.sampling so the geometric
# schedulers can share it; re-exported here for backward compatibility.
from repro.core.sampling import geometric_skip  # noqa: E402

__all__ = [
    "PairwiseProtocol",
    "PopulationResult",
    "PopulationSimulator",
    "geometric_skip",
]
