"""Evidence for Conjecture 1 (§5.2): anonymous terminating counting fails.

The paper conjectures that any *anonymous* always-terminating protocol has
(at least) a constant probability that some node terminates after a
constant number of interactions — and therefore cannot count ``n`` w.h.p.
Its supporting argument has three parts: (1) some configuration with every
state at ``Theta(n)`` multiplicity is reached with constant probability,
(2) multiplicities stay ``Theta(n)`` for ``Theta(n)`` steps, and (3) some
node then observes any fixed terminating sequence ``s0`` with constant
probability.

This module provides the experimental counterparts used by
``benchmarks/bench_leaderless.py``:

* :func:`state_multiplicity_experiment` — runs a representative anonymous
  protocol and records the minimum state multiplicity over a window of
  ``Theta(n)`` steps (argument parts 1-2).
* :func:`early_termination_experiment` — runs the anonymous analogue of the
  §5.3.1 window protocol (ids replaced by states, as anonymity forces) and
  measures how often a node terminates within a constant number of
  interactions and how wrong its count is (argument part 3 and the
  conjecture's consequence).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.population.model import PairwiseProtocol, PopulationSimulator


@dataclass
class LeaderlessObservation:
    """Aggregated outcome of a leaderless experiment."""

    n: int
    trials: int
    early_termination_rate: float
    mean_interactions_of_terminator: float
    mean_relative_count_error: float


# ----------------------------------------------------------------------
# Part 1-2: state multiplicities of an anonymous protocol stay Theta(n)
# ----------------------------------------------------------------------


class CyclicAnonymous(PairwiseProtocol):
    """A representative anonymous protocol with recurrent state dynamics.

    States are ``0..k-1``; when two equal states meet, the initiator (the
    lower index in the unordered pair — a symmetric convention) advances by
    one modulo ``k``. Starting from all-zeros, the multiset of states mixes
    toward all states having ``Theta(n)`` multiplicity.
    """

    def __init__(self, k: int = 3) -> None:
        self.k = k

    def initial_states(self, n: int, rng: random.Random) -> List[int]:
        return [0] * n

    def interact(self, a: int, b: int, rng) -> Tuple[int, int]:
        if a == b:
            return (a + 1) % self.k, b
        return a, b


def state_multiplicity_experiment(
    n: int,
    k: int = 3,
    warmup_factor: int = 20,
    window_factor: int = 5,
    seed: Optional[int] = None,
) -> Tuple[float, Dict[int, int]]:
    """Run :class:`CyclicAnonymous` and measure the multiplicity floor.

    After ``warmup_factor * n`` steps, tracks the minimum over a
    ``window_factor * n`` step window of the least state multiplicity,
    normalized by ``n``. A floor bounded away from 0 as ``n`` grows is
    exactly the paper's argument parts (1)-(2). Returns
    ``(floor / n, final state histogram)``.
    """
    sim = PopulationSimulator(CyclicAnonymous(k), n, seed=seed)
    for _ in range(warmup_factor * n):
        sim.step()
    floor = n
    for _ in range(window_factor * n):
        sim.step()
        counts: Dict[int, int] = {}
        for s in sim.states:
            counts[s] = counts.get(s, 0) + 1
        if len(counts) < k:
            floor = 0
        else:
            floor = min(floor, min(counts.values()))
    histogram: Dict[int, int] = {}
    for s in sim.states:
        histogram[s] = histogram.get(s, 0) + 1
    return floor / n, histogram


# ----------------------------------------------------------------------
# Part 3 + consequence: the anonymous window protocol terminates early
# ----------------------------------------------------------------------


@dataclass
class AnonymousWindowState:
    """A §5.3.1-style node that can only observe *states*, not ids.

    Anonymity leaves nothing distinguishing to record, so the observed
    sequence is over the partner's current phase (its interaction count
    modulo a constant) — the best an anonymous finite-state node can show.
    """

    phase: int = 0
    first_window: List[int] = field(default_factory=list)
    current_window: List[int] = field(default_factory=list)
    interactions: int = 0
    distinct_proxy: int = 0
    halted: bool = False


class AnonymousWindowCounting(PairwiseProtocol):
    """The anonymous analogue of the simple UID protocol of §5.3.1.

    Nodes record the phases of their first ``b`` partners and halt when a
    later ``b``-window repeats the recording. Without ids the recorded
    symbols carry (at most) constant information, so windows repeat after a
    constant expected number of trials — some node halts after O(b)
    interactions with constant probability, having counted essentially
    nothing. This is the conjecture's consequence made concrete.
    """

    def __init__(self, b: int = 2, phases: int = 4) -> None:
        self.b = b
        self.phases = phases

    def initial_states(self, n: int, rng: random.Random) -> List[AnonymousWindowState]:
        return [AnonymousWindowState() for _ in range(n)]

    def interact(self, a: AnonymousWindowState, b: AnonymousWindowState, rng):
        sa, sb = a.phase, b.phase
        self._observe(a, sb)
        self._observe(b, sa)
        return a, b

    def _observe(self, node: AnonymousWindowState, symbol: int) -> None:
        if node.halted:
            return
        node.interactions += 1
        node.phase = (node.phase + 1) % self.phases
        node.distinct_proxy += 1  # the anonymous "count": interactions seen
        if len(node.first_window) < self.b:
            node.first_window.append(symbol)
            return
        node.current_window.append(symbol)
        if len(node.current_window) == self.b:
            if node.current_window == node.first_window:
                node.halted = True
            else:
                node.current_window.clear()

    def halted(self, state: AnonymousWindowState) -> bool:
        return state.halted


def early_termination_experiment(
    n: int,
    b: int = 2,
    trials: int = 50,
    early_cutoff_factor: int = 1,
    seed: int = 0,
) -> LeaderlessObservation:
    """Measure early-termination behavior of the anonymous window protocol.

    ``early_termination_rate`` is the fraction of trials in which the first
    halting node had participated in at most ``early_cutoff_factor * 4 * b``
    interactions — a constant independent of ``n``. The conjecture predicts
    this stays bounded away from 0 as ``n`` grows; the count error shows the
    protocol learned nothing about ``n``.
    """
    rng = random.Random(seed)
    cutoff = early_cutoff_factor * 4 * b
    early = 0
    terminator_steps = []
    errors = []
    for _ in range(trials):
        sim = PopulationSimulator(
            AnonymousWindowCounting(b), n, seed=rng.randrange(2**31)
        )
        res = sim.run(max_interactions=5000 * n, require_halt=True)
        assert res.halted_index is not None
        halter = sim.states[res.halted_index]
        terminator_steps.append(halter.interactions)
        if halter.interactions <= cutoff:
            early += 1
        errors.append(abs(halter.distinct_proxy - n) / n)
    return LeaderlessObservation(
        n=n,
        trials=trials,
        early_termination_rate=early / trials,
        mean_interactions_of_terminator=sum(terminator_steps) / trials,
        mean_relative_count_error=sum(errors) / trials,
    )
