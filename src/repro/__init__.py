"""repro — full reproduction of Michail (2015), "Terminating Distributed
Construction of Shapes and Patterns in a Fair Solution of Automata".

The library implements the paper's geometric network-constructor model
(finite automata with 4/6 ports floating in a well-mixed solution), the
basic stabilizing constructors of §4, the terminating probabilistic
counting suite of §5, the universal shape/pattern constructors of §6, and
the shape self-replication of §7, together with every substrate they rely
on (grid geometry, rotation groups, schedulers, population protocols,
Turing machines, random-walk analysis).

Quickstart::

    from repro import spanning_line_protocol, World, Simulation
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(10, protocol, leaders=1)
    Simulation(world, protocol, seed=0).run_to_stabilization()

See EXPERIMENTS.md for the generated index of registered scenarios —
every workload is also runnable declaratively through
``repro.experiments`` (``run_named("counting", n=64, seed=0)``) or the
``repro run`` / ``repro sweep`` CLI.
"""

from repro.errors import (
    CollisionError,
    GeometryError,
    InvalidShapeError,
    MachineError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
    TerminationError,
)
from repro.geometry import (
    Port,
    Rotation,
    Shape,
    Vec,
    bounding_rect,
    enclosing_square,
    zigzag_cell_to_index,
    zigzag_index_to_cell,
)
from repro.core import (
    AgentProtocol,
    Candidate,
    EnumeratingScheduler,
    HotScheduler,
    Protocol,
    RejectionScheduler,
    Rule,
    RuleProtocol,
    RunResult,
    Simulation,
    StopReason,
    TraceRecorder,
    World,
    format_protocol,
    lint_protocol,
    make_scheduler,
    record_run,
    replay,
    world_from_dict,
    world_to_dict,
)
from repro.protocols import (
    is_spanning_line_configuration,
    leaderless_spanning_line_protocol,
    line_replication_protocol,
    no_leader_line_replication_protocol,
    self_replicating_lines_protocol,
    simple_line_protocol,
    spanning_line_protocol,
    square2_protocol,
    square_protocol,
)
from repro.population import (
    CountingUpperBound,
    SimpleUIDCounting,
    UIDCounting,
    run_counting,
)
from repro.machines import (
    PatternProgram,
    PredicateShapeProgram,
    ShapeProgram,
    TMShapeProgram,
    TuringMachine,
    checkerboard_pattern_program,
    cross_program,
    diamond_program,
    expected_shape,
    frame_program,
    full_square_program,
    gradient_pattern_program,
    leader_square_root,
    line_program,
    ring_pattern_program,
    serpentine_program,
    sierpinski_pattern_program,
    star_program,
    stripes_program,
    successive_squares_sqrt,
)
from repro.constructors import (
    DistributedTMSquare,
    run_counting_on_a_line,
    run_cube_known_n,
    run_parallel_3d,
    run_parallel_segments,
    run_pattern_construction,
    run_shape_construction,
    run_square_known_n,
    run_universal,
)
from repro.replication import (
    replicate_by_columns,
    replicate_by_shifting,
    run_squaring,
)
from repro.faults import (
    FaultySimulation,
    break_random_bond,
    detach_part,
    repair_shape,
)
from repro.sync import (
    SynchronousProgram,
    TwoSpeedSimulation,
    broadcast_program,
    distance_wave_program,
    run_component_rounds,
)
from repro.hybrid import (
    HybridSimulation,
    MovementProtocol,
    MovementRule,
    rotate_leaf,
    walker_protocol,
)
from repro.viz import render_labels, render_layers, render_shape, render_world
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    Param,
    Scenario,
    SweepSpec,
    derive_seed,
    get_scenario,
    run_experiment,
    run_named,
    run_sweep,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "GeometryError", "InvalidShapeError", "ProtocolError",
    "SchedulerError", "SimulationError", "CollisionError", "TerminationError",
    "MachineError",
    # geometry
    "Vec", "Rotation", "Port", "Shape", "bounding_rect", "enclosing_square",
    "zigzag_index_to_cell", "zigzag_cell_to_index",
    # core
    "Protocol", "RuleProtocol", "AgentProtocol", "Rule", "World", "Candidate",
    "Simulation", "RunResult", "StopReason", "HotScheduler",
    "EnumeratingScheduler", "RejectionScheduler", "make_scheduler",
    # experiments (declarative scenario registry, sweeps, uniform results)
    "Param", "Scenario", "ExperimentSpec", "SweepSpec", "ExperimentResult",
    "derive_seed", "get_scenario", "scenario_names", "run_experiment",
    "run_named", "run_sweep",
    # tooling: introspection, traces, snapshots
    "format_protocol", "lint_protocol", "TraceRecorder", "record_run",
    "replay", "world_to_dict", "world_from_dict",
    # protocols
    "spanning_line_protocol", "simple_line_protocol", "square_protocol",
    "square2_protocol", "line_replication_protocol",
    "no_leader_line_replication_protocol", "self_replicating_lines_protocol",
    "leaderless_spanning_line_protocol", "is_spanning_line_configuration",
    # population
    "CountingUpperBound", "run_counting", "SimpleUIDCounting", "UIDCounting",
    # machines
    "TuringMachine", "ShapeProgram", "TMShapeProgram",
    "PredicateShapeProgram", "PatternProgram", "line_program",
    "full_square_program", "cross_program", "star_program", "frame_program",
    "ring_pattern_program", "expected_shape", "serpentine_program",
    "diamond_program", "stripes_program", "checkerboard_pattern_program",
    "sierpinski_pattern_program", "gradient_pattern_program",
    "successive_squares_sqrt", "leader_square_root",
    # constructors
    "run_counting_on_a_line", "run_square_known_n", "run_cube_known_n",
    "DistributedTMSquare",
    "run_shape_construction", "run_pattern_construction", "run_parallel_3d",
    "run_parallel_segments", "run_universal",
    # replication
    "run_squaring", "replicate_by_shifting", "replicate_by_columns",
    # faults (§8 robustness)
    "FaultySimulation", "break_random_bond", "detach_part", "repair_shape",
    # sync (§8 two-speed model)
    "SynchronousProgram", "TwoSpeedSimulation", "broadcast_program",
    "distance_wave_program", "run_component_rounds",
    # hybrid (§8 active/passive mobility)
    "MovementRule", "MovementProtocol", "HybridSimulation", "rotate_leaf",
    "walker_protocol",
    # viz
    "render_shape", "render_labels", "render_world", "render_layers",
]
