"""Live ASCII view over a streaming trace (``repro submit --trace``).

:class:`LiveTraceView` consumes ``repro.trace/v1`` records in stream order
— from the sweep service's NDJSON forwarding, or from a trace file read
back — and renders the evolving world as ASCII frames. It rides on
:class:`~repro.trace.replay.TraceCursor` in *resync* mode, so runs that
mutate the world outside the traced interaction stream (constructor
surgery between steps) snap back into sync at the next checkpoint instead
of erroring: this is a viewer, not a verifier.

A matplotlib/networkx animation is available as an import-guarded optional
extra (:func:`animate_trace`), mirroring how numpy gates the columnar
backend — the library itself never requires either package.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, IO, Optional

from repro.errors import ReproError
from repro.trace.replay import TraceCursor
from repro.viz.ascii_art import render_world


class LiveTraceView:
    """Render trace records as they arrive; one ASCII frame per interval.

    Parameters
    ----------
    out:
        Destination stream (default: stdout).
    render_every:
        Emit a frame every that many events; ``None`` renders only at
        checkpoints and at the end (the bandwidth-friendly default).
    include_free:
        Also draw free (single-node) components.
    """

    def __init__(
        self,
        out: Optional[IO[str]] = None,
        render_every: Optional[int] = None,
        include_free: bool = False,
    ) -> None:
        self.out = out if out is not None else sys.stdout
        self.render_every = render_every
        self.include_free = include_free
        self.cursor = TraceCursor(resync=True)
        self.frames = 0

    def feed(self, record: Dict[str, Any]) -> None:
        """Consume one record in stream order."""
        kind = record.get("kind")
        if kind == "header":
            self.cursor.feed(record)
            h = record
            self._say(
                f"recording {h.get('scenario') or 'run'} "
                f"seed={h.get('seed')} scheduler={h.get('scheduler') or '-'} "
                f"run={h.get('run', 0)}"
            )
            return
        if self.cursor.world is None:
            return  # stream joined mid-run; wait for a checkpoint resync
        self.cursor.feed(record)
        if kind in ("event", "detach", "excise"):
            if kind == "detach":
                self._say(f"  fault: bond snapped after event {record['index']}")
            elif kind == "excise":
                self._say(
                    f"  fault: node {record['nid']} excised "
                    f"after event {record['index']}"
                )
            if (
                self.render_every
                and kind == "event"
                and record["index"] % self.render_every == 0
            ):
                self._frame(f"event {record['index']}")
        elif kind == "checkpoint":
            if not self.render_every:
                self._frame(f"checkpoint @ {record['events']} events")
        elif kind == "end":
            self._frame(f"end @ {record['events']} events")
            self._say(f"final world digest {record['world_digest'][:12]}…")

    # ------------------------------------------------------------------

    def _frame(self, label: str) -> None:
        assert self.cursor.world is not None
        art = render_world(
            self.cursor.world,
            state_char=lambda s: "#",
            include_free=self.include_free,
        )
        self._say(f"--- {label} ---")
        self._say(art if art.strip() else "(no multi-node components yet)")
        self.frames += 1

    def _say(self, text: str) -> None:
        print(text, file=self.out)


def animate_trace(path, interval_ms: int = 150):
    """Optional extra: animate a trace's checkpoints with matplotlib.

    Requires matplotlib (and uses networkx for bond layout when present);
    both are import-guarded — the core library never depends on them.
    Returns the ``FuncAnimation`` so callers can save or show it.
    """
    try:
        import matplotlib.pyplot as plt
        from matplotlib.animation import FuncAnimation
    except ImportError as exc:  # pragma: no cover - optional extra
        raise ReproError(
            "animate_trace needs the optional matplotlib extra "
            "(pip install matplotlib); the ASCII LiveTraceView has no "
            "extra dependencies"
        ) from exc

    from repro.core.trace import world_from_dict
    from repro.trace.reader import TraceReader

    trace = TraceReader.load(path)
    snapshots = [trace.header["snapshot"]] + [
        rec["snapshot"] for _, rec in trace.checkpoints()
    ]

    fig, ax = plt.subplots()

    def draw(i):  # pragma: no cover - optional extra
        ax.clear()
        world = world_from_dict(snapshots[i])
        xs, ys = [], []
        for rec in world.nodes.values():
            pos = rec.pos.as_tuple()
            xs.append(pos[0])
            ys.append(pos[1])
        ax.scatter(xs, ys, s=40)
        ax.set_title(f"snapshot {i}/{len(snapshots) - 1}")
        ax.set_aspect("equal")
        return ax,

    return FuncAnimation(
        fig, draw, frames=len(snapshots), interval=interval_ms
    )
