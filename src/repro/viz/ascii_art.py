"""ASCII renderings of shapes and worlds.

These produce the textual analogues of the paper's figures: the square of
Figure 7(a), the star of Figure 7(c), the released shape of Figure 7(d).
The y axis points up (row 0 is printed last), matching the paper's
bottom-left-origin convention.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.geometry.shape import Shape
from repro.geometry.vec import Vec


def render_shape(
    shape: Shape,
    on_char: str = "#",
    off_char: str = ".",
    label_chars: Optional[Mapping[object, str]] = None,
) -> str:
    """Render a 2D shape; labeled shapes render their labels.

    Unlabeled cells use ``on_char``; grid cells inside the bounding box but
    outside the shape use ``off_char``.
    """
    labels = shape.label_map
    xs = [c.x for c in shape.cells]
    ys = [c.y for c in shape.cells]
    lines = []
    for y in range(max(ys), min(ys) - 1, -1):
        row = []
        for x in range(min(xs), max(xs) + 1):
            cell = Vec(x, y)
            if cell not in shape.cells:
                row.append(off_char)
                continue
            if cell in labels:
                value = labels[cell]
                if label_chars is not None and value in label_chars:
                    row.append(label_chars[value])
                else:
                    row.append(str(value)[:1] or on_char)
            else:
                row.append(on_char)
        lines.append("".join(row))
    return "\n".join(lines)


def render_labels(cells: Mapping[Vec, object], off_char: str = ".") -> str:
    """Render an arbitrary cell -> label mapping (e.g. a Remark 4 pattern)."""
    if not cells:
        return ""
    xs = [c.x for c in cells]
    ys = [c.y for c in cells]
    lines = []
    for y in range(max(ys), min(ys) - 1, -1):
        row = []
        for x in range(min(xs), max(xs) + 1):
            value = cells.get(Vec(x, y))
            row.append(off_char if value is None else str(value)[:1])
        lines.append("".join(row))
    return "\n".join(lines)


def render_layers(
    shape: Shape,
    on_char: str = "#",
    off_char: str = ".",
) -> str:
    """Render a 3D shape layer by layer (one z slice per block).

    Slices are printed from the highest z to the lowest; each slice uses
    the same bounding box so layers align visually. 2D shapes render as a
    single slice.
    """
    xs = [c.x for c in shape.cells]
    ys = [c.y for c in shape.cells]
    zs = sorted({c.z for c in shape.cells}, reverse=True)
    labels = shape.label_map
    blocks = []
    for z in zs:
        lines = [f"z = {z}:"]
        for y in range(max(ys), min(ys) - 1, -1):
            row = []
            for x in range(min(xs), max(xs) + 1):
                cell = Vec(x, y, z)
                if cell not in shape.cells:
                    row.append(off_char)
                elif cell in labels:
                    row.append(str(labels[cell])[:1] or on_char)
                else:
                    row.append(on_char)
            lines.append("".join(row))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_world(
    world,
    state_char: Optional[Callable[[object], str]] = None,
    include_free: bool = False,
) -> str:
    """Render every multi-node component of a world, one block per component.

    ``state_char`` maps a node state to a single display character
    (defaults to the state's first character).
    """
    blocks = []
    for cid in sorted(world.components):
        comp = world.components[cid]
        if comp.size() == 1 and not include_free:
            continue
        cells: Dict[Vec, str] = {}
        for cell, nid in comp.cells.items():
            state = world.state_of(nid)
            if state_char is not None:
                cells[cell] = state_char(state)
            else:
                cells[cell] = str(state)[:1]
        blocks.append(f"component {cid} ({comp.size()} nodes):\n" + render_labels(cells))
    if include_free:
        free = len(world.free_node_ids())
        blocks.append(f"free nodes: {free}")
    return "\n\n".join(blocks)
