"""ASCII rendering of shapes, worlds and patterns (figure analogues)."""

from repro.viz.ascii_art import (
    render_labels,
    render_layers,
    render_shape,
    render_world,
)

__all__ = ["render_shape", "render_world", "render_labels", "render_layers"]
