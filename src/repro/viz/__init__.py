"""ASCII rendering of shapes, worlds and patterns (figure analogues).

:mod:`repro.viz.live` adds a streaming view over ``repro.trace/v1``
records (``repro submit --trace`` / ``repro replay --render``); the
matplotlib animation there is an import-guarded optional extra.
"""

from repro.viz.ascii_art import (
    render_labels,
    render_layers,
    render_shape,
    render_world,
)
from repro.viz.live import LiveTraceView

__all__ = [
    "render_shape",
    "render_world",
    "render_labels",
    "render_layers",
    "LiveTraceView",
]
