"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the common failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """An operation on grid geometry was invalid.

    Raised, for example, when a shape is built from disconnected cells, when
    a rotation index is outside the rotation group, or when an edge joins
    non-adjacent cells.
    """


class InvalidShapeError(GeometryError):
    """A set of cells/edges does not form a valid shape (Definition in §3)."""


class ProtocolError(ReproError):
    """A protocol definition is malformed.

    Examples: a rule references a port outside the protocol's port set, two
    rules with the same left-hand side disagree, or an agent handler returns
    a malformed update.
    """


class SchedulerError(ReproError):
    """The scheduler could not produce an interaction.

    Raised when no permissible interaction exists (the world is frozen) and
    the caller did not ask for graceful stabilization detection.
    """


class SimulationError(ReproError):
    """The simulation reached an inconsistent or impossible situation."""


class CollisionError(SimulationError):
    """Applying an interaction would place two nodes on the same grid cell.

    The scheduler never *selects* colliding interactions; this error guards
    against internal bugs and against user code forcing invalid placements.
    """


class TerminationError(SimulationError):
    """A run exceeded its step budget without reaching the requested
    condition (termination, stabilization, or a user predicate)."""


class TraceError(ReproError):
    """A streaming trace (``repro.trace``) is malformed or fails validation.

    Raised on schema mismatches, broken hash chains, digest mismatches, and
    replay requests outside the recorded range. Tampered or truncated trace
    files are *rejected* with this error — they never replay into a wrong
    world."""


class MachineError(ReproError):
    """A Turing machine definition or execution is invalid.

    Examples: missing transition in a complete-TM context, head moving off a
    bounded tape, or exceeding a configured space bound.
    """
