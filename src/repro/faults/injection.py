"""Fault adversaries over a :class:`~repro.core.world.World` (§8).

The environment of the paper's robustness discussion breaks an active link
with a small probability at any time. We model it as an interleaving of the
protocol's effective interactions with *fault events*: after each applied
interaction, each step independently breaks one uniformly random active
bond with probability ``break_prob`` and (optionally) excises one uniformly
random bonded node with probability ``excise_prob`` — the node-disappearance
face of the same adversary. Splitting into connected fragments is handled
by the world (each fragment keeps operating, exactly as the paper's
detached parts keep floating in the solution).

Every fault funnels through the world's journaled mutation paths — bond
removals land the endpoints in the change journal and disconnections and
excisions are recorded in the world-delta journal — so incremental
candidate caches consume each fault as a fine-grained split delta instead
of re-sweeping the damaged component (``repro.core.candidates``;
benchmarked by ``benchmarks/bench_splits.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.protocol import Protocol, State
from repro.core.scheduler import Scheduler
from repro.core.simulator import RunResult, Simulation, StopReason
from repro.core.world import Bond, World, bond_sort_key
from repro.errors import SimulationError


def random_active_bonds(world: World) -> List[Tuple[int, Bond]]:
    """All active bonds of the configuration as ``(component id, bond)``.

    Deterministically ordered (bond sets iterate in hash order, which
    varies across processes; the fault coin's RNG draw indexes this list).
    """
    out: List[Tuple[int, Bond]] = []
    for comp in world.components.values():
        for bond in sorted(comp.bonds, key=bond_sort_key):
            out.append((comp.cid, bond))
    return out


def break_bond(world: World, bond: Bond) -> None:
    """Deactivate one specific active bond (shared by injection and replay).

    The trace replay engine (``repro.trace.replay``) applies recorded
    ``detach`` records through this exact path, so a replayed fault splits,
    journals, and renumbers fragments identically to the live injection.
    """
    (a, _pa), _ = tuple(bond)  # either endpoint locates the owning component
    comp = world.components[world.nodes[a].component_id]
    if bond not in comp.bonds:
        raise SimulationError(f"cannot break inactive bond {sorted(bond)!r}")
    comp.bonds.discard(bond)
    # Journal the endpoints so incremental schedulers see the snapped link;
    # a disconnecting removal splits below, journalling a split delta.
    for nid, _port in bond:
        world.note_change(nid)
    world._split_if_disconnected(comp)


def break_random_bond(world: World, rng: random.Random) -> Optional[Bond]:
    """Deactivate one uniformly random active bond; ``None`` if none exist.

    The owning component is split into its bond-connected fragments when the
    removal disconnects it, mirroring a physical link snapping.
    """
    bonds = random_active_bonds(world)
    if not bonds:
        return None
    _cid, bond = bonds[rng.randrange(len(bonds))]
    break_bond(world, bond)
    return bond


def excise_random_node(
    world: World, rng: random.Random, state: State
) -> Optional[int]:
    """Excise one uniformly random bonded node; ``None`` if all are free.

    The node-disappearance fault of §8: all the node's connections
    deactivate and it returns to the solution as a free node in ``state``
    (typically the protocol's initial state — the node "forgets"). The
    surgery goes through :meth:`~repro.core.world.World.free_singleton`,
    so the excision is journalled as a split delta and the remainder of
    the component splits into its bond-connected fragments.
    """
    bonded = sorted(nid for nid in world.nodes if not world.is_free(nid))
    if not bonded:
        return None
    nid = bonded[rng.randrange(len(bonded))]
    world.free_singleton(nid, state)
    return nid


@dataclass
class BondBreakage:
    """Record of one injected link fault."""

    at_event: int
    bond: Bond


@dataclass
class NodeExcision:
    """Record of one injected node-disappearance fault."""

    at_event: int
    nid: int


@dataclass
class FaultySimulation:
    """A :class:`~repro.core.simulator.Simulation` under perpetual faults.

    After every applied effective interaction, a fault coin with probability
    ``break_prob`` is flipped (on success one uniformly random active bond
    snaps), then — when ``excise_prob > 0`` — an excision coin likewise
    (on success one uniformly random bonded node is cut free, resuming in
    the protocol's initial state). With either probability positive and a
    construction that needs bonds, the execution keeps being set back — the
    quantitative face of §8's "no construction can ever stabilize".

    Parameters mirror :class:`Simulation`; ``max_bonds_broken`` /
    ``max_excisions`` optionally stop injecting after a budget of faults so
    that runs can be driven to stabilization *after* a burst of damage.
    With ``excise_prob == 0`` (the default) no excision coin is ever
    flipped, so seeded trajectories are unchanged from the
    breakage-only adversary.
    """

    world: World
    protocol: Protocol
    break_prob: float
    scheduler: Optional[Scheduler] = None
    seed: Optional[int] = None
    max_bonds_broken: Optional[int] = None
    excise_prob: float = 0.0
    max_excisions: Optional[int] = None

    breakages: List[BondBreakage] = field(default_factory=list)
    excisions: List[NodeExcision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.break_prob <= 1.0:
            raise SimulationError(
                f"break probability must be in [0, 1]: {self.break_prob}"
            )
        if not 0.0 <= self.excise_prob <= 1.0:
            raise SimulationError(
                f"excise probability must be in [0, 1]: {self.excise_prob}"
            )
        self._rng = random.Random(self.seed)
        kwargs = {}
        if self.scheduler is not None:
            kwargs["scheduler"] = self.scheduler
        self._sim = Simulation(
            self.world, self.protocol, rng=self._rng, **kwargs
        )

    @property
    def events(self) -> int:
        return self._sim.events

    def _trace_writer(self):
        """The attached streaming trace writer, if a recording is active.

        Duck-typed through the hook the recording context installed on the
        inner simulation (``repro.trace`` carries a ``trace_writer``
        attribute on its hook closures) — faults stay import-free of the
        trace subsystem. Injected faults are invisible to the per-event
        hook (a non-disconnecting break journals no world delta at all), so
        they must be recorded out-of-band for replay to be bit-exact.
        """
        return getattr(self._sim.trace, "trace_writer", None)

    def _budget_left(self) -> bool:
        return (
            self.max_bonds_broken is None
            or len(self.breakages) < self.max_bonds_broken
        )

    def _excise_budget_left(self) -> bool:
        return (
            self.max_excisions is None
            or len(self.excisions) < self.max_excisions
        )

    def _faults_possible(self) -> bool:
        if (
            self.break_prob > 0.0
            and self._budget_left()
            and any(c.bonds for c in self.components())
        ):
            return True
        return (
            self.excise_prob > 0.0
            and self._excise_budget_left()
            and any(c.size() > 1 for c in self.components())
        )

    def components(self):
        return self.world.components.values()

    def _maybe_break(self) -> bool:
        """Flip the breakage coin; True iff a bond actually snapped."""
        if (
            self.break_prob > 0.0
            and self._budget_left()
            and self._rng.random() < self.break_prob
        ):
            bond = break_random_bond(self.world, self._rng)
            if bond is not None:
                self.breakages.append(BondBreakage(self._sim.events, bond))
                writer = self._trace_writer()
                if writer is not None:
                    writer.record_break(self._sim.events, bond)
                return True
        return False

    def _maybe_excise(self) -> bool:
        """Flip the excision coin; True iff a node was actually cut free.

        Consumes no randomness when ``excise_prob`` is zero, keeping the
        breakage-only RNG stream intact.
        """
        if (
            self.excise_prob > 0.0
            and self._excise_budget_left()
            and self._rng.random() < self.excise_prob
        ):
            nid = excise_random_node(
                self.world, self._rng, self.protocol.initial_state
            )
            if nid is not None:
                self.excisions.append(NodeExcision(self._sim.events, nid))
                writer = self._trace_writer()
                if writer is not None:
                    writer.record_excise(
                        self._sim.events, nid, self.protocol.initial_state
                    )
                return True
        return False

    def step(self) -> bool:
        """One time step: a protocol event (if any) plus the fault coins.

        Returns False only on *genuine* stabilization: no effective
        interaction is permissible and no fault can ever strike again
        (the probabilities are zero, the fault budgets are spent, or no
        active bond / bonded node remains). While faults remain possible
        the configuration can always change again — §8's "no construction
        can ever stabilize".
        """
        event = self._sim.step()
        if event is not None:
            self._maybe_break()
            self._maybe_excise()
            return True
        # Protocol quiescent: only faults can move the configuration.
        if not self._faults_possible():
            return False
        broke = self._maybe_break()
        excised = self._maybe_excise()
        if broke or excised:
            self._sim.stabilized = False  # damage may re-enable events
        return True

    def run(self, max_steps: int = 100_000) -> RunResult:
        """Run until genuine stabilization or the step budget.

        With unbounded faults and any bonded construction the expected
        outcome is ``"budget"`` — perpetual setbacks preclude stabilization.
        """
        for _ in range(max_steps):
            if not self.step():
                return RunResult(
                    self._sim.events, None, True, False, StopReason.STABILIZED
                )
        return RunResult(self._sim.events, None, False, False, StopReason.BUDGET)

    def largest_component_size(self) -> int:
        """Order of the largest connected component (progress metric)."""
        return max(c.size() for c in self.world.components.values())
