"""Fault injection and self-repair (the robustness questions of §8).

The paper's conclusions pose two robustness questions:

* *"Imagine an environment that can at any given time break an active link
  with some (small) probability. Under such a perpetual setback no
  construction can ever stabilize."* — :class:`FaultySimulation` implements
  exactly this adversary (a per-event bond-breakage probability, plus an
  optional node-excision probability for the node-disappearance face of
  the same question) so the claim can be exercised quantitatively. Every
  fault goes through the world's journaled mutation paths, so incremental
  candidate caches prune the damage as split deltas instead of re-sweeping
  whole components.
* *"Imagine that a shape has stabilized but a part of it detaches … Can we
  detect and reconstruct the broken part efficiently (and without resetting
  the whole population)? What knowledge about the whole shape should the
  nodes have?"* — :func:`detach_part` produces such damage and
  :func:`repair_shape` reconstructs it from a *blueprint* (the shape's own
  pixel description, which §6's constructions already store distributedly),
  paying interactions proportional to the damage rather than to the whole
  shape.
"""

from repro.faults.injection import (
    BondBreakage,
    FaultySimulation,
    NodeExcision,
    break_random_bond,
    excise_random_node,
    random_active_bonds,
)
from repro.faults.repair import (
    RepairResult,
    damage_statistics,
    detach_component_part,
    detach_part,
    repair_shape,
)

__all__ = [
    "BondBreakage",
    "FaultySimulation",
    "NodeExcision",
    "break_random_bond",
    "excise_random_node",
    "random_active_bonds",
    "RepairResult",
    "detach_component_part",
    "detach_part",
    "repair_shape",
    "damage_statistics",
]
