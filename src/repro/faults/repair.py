"""Detecting and reconstructing broken parts of a stabilized shape (§8).

The paper asks: *"imagine that a shape has stabilized but a part of it
detaches, all the connections of the part become deactivated, and all its
nodes become free. Can we detect and reconstruct the broken part efficiently
(and without resetting the whole population and repeating the construction
from the beginning)? What knowledge about the whole shape should the nodes
have?"*

The answer implemented here: the *blueprint* — the shape's own pixel
description, which the §6 universal constructors already hold distributedly
(the zig-zag bit string of ``S_d``) — suffices. Repair proceeds by purely
local attachments, exactly like the squaring phase of §7.1:

1. every surviving node knows its blueprint cell (its pixel index);
2. a missing blueprint cell adjacent to a surviving cell is *locally
   detectable* (the surviving node sees an empty port where the blueprint
   demands a neighbor) — the analogue of Proposition 1's detection shapes;
3. a free node arriving at such a port is attached, adopts the cell's pixel
   index, and thereby extends the detection frontier.

Since the blueprint shape is connected, induction over its cells shows the
frontier reaches every missing cell: repair always completes, and the number
of attachment interactions equals the number of missing cells plus the
number of missing bonds — proportional to the *damage*, never to the whole
shape. This answers the efficiency question affirmatively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.core.world import World, bond_sort_key
from repro.errors import ReproError, SimulationError
from repro.geometry.shape import Shape
from repro.geometry.vec import UNIT_VECTORS, Vec


def _connected(cells: Set[Vec]) -> bool:
    if not cells:
        return False
    start = next(iter(cells))
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for d in UNIT_VECTORS:
            w = v + d
            if w in cells and w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(cells)


def detach_part(
    shape: Shape,
    fraction: float,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    max_attempts: int = 200,
) -> Tuple[Shape, Set[Vec]]:
    """Detach a connected part of ``shape``, as in §8's breakage scenario.

    Removes a random connected region of about ``fraction`` of the cells
    such that the surviving region stays connected (the leader must survive
    on it to coordinate repair). Returns ``(damaged shape, lost cells)``.

    Some shapes admit no such split at the requested size (e.g. a plus sign
    cannot lose two adjacent cells and stay connected); the target size then
    degrades towards 1 — a single non-cut cell always exists for any shape
    of two or more cells. Raises :class:`ReproError` only for a 1-cell shape
    or an out-of-range fraction.
    """
    if rng is None:
        rng = random.Random(seed)
    if not 0.0 < fraction < 1.0:
        raise ReproError(f"fraction must be in (0, 1): {fraction}")
    target = max(1, int(round(fraction * len(shape.cells))))
    target = min(target, len(shape.cells) - 1)
    if target < 1:
        raise ReproError("cannot detach a part of a single-cell shape")
    cells = set(shape.cells)
    for attempt in range(max_attempts):
        # Degrade the region size every quarter of the attempt budget, so
        # shapes with no large feasible detachment still split.
        shrink = attempt // max(1, max_attempts // 4)
        target_now = max(1, target - shrink * max(1, target // 3 + 1))
        seed_cell = rng.choice(sorted(cells))
        region = {seed_cell}
        frontier = [seed_cell]
        while len(region) < target_now and frontier:
            base = frontier[rng.randrange(len(frontier))]
            options = [
                base + d
                for d in UNIT_VECTORS
                if base + d in cells and base + d not in region
            ]
            if not options:
                frontier.remove(base)
                continue
            nxt = rng.choice(sorted(options))
            region.add(nxt)
            frontier.append(nxt)
        if len(region) != target_now:
            continue
        remainder = cells - region
        if not remainder or not _connected(remainder):
            continue
        kept_edges = {e for e in shape.edges if all(c in remainder for c in e)}
        if not _edges_connect(remainder, kept_edges):
            continue
        damaged = Shape.from_cells(
            remainder,
            kept_edges,
            labels={c: v for c, v in shape.labels if c in remainder} or None,
        )
        return damaged, region
    raise ReproError(
        f"no connected detachment of fraction {fraction} found "
        f"in {max_attempts} attempts"
    )


def detach_component_part(
    world: World,
    cid: int,
    fraction: float,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    max_attempts: int = 200,
) -> Tuple[int, ...]:
    """World-level §8 damage: detach a bond-connected part of a component.

    The live-configuration twin of :func:`detach_part`: grows a random
    bond-connected region of about ``fraction`` of the component's nodes
    whose removal keeps the remainder bond-connected, deactivates every
    bond crossing the cut, and lets the world split. All mutations funnel
    through the journaled surgery paths — the snapped bonds' endpoints
    land in the change journal and the disconnection is recorded as a
    split delta — so incremental candidate caches consume the damage as a
    fine-grained delta instead of re-sweeping the surviving part. Returns
    the node ids of the detached region (now a component of its own,
    bonds within the region intact).

    Like :func:`detach_part`, the target size degrades toward one node
    when the requested fraction admits no valid cut; raises
    :class:`ReproError` for a single-node component or an out-of-range
    fraction.
    """
    if rng is None:
        rng = random.Random(seed)
    if not 0.0 < fraction < 1.0:
        raise ReproError(f"fraction must be in (0, 1): {fraction}")
    comp = world.components[cid]
    members = sorted(comp.cells.values())
    if len(members) < 2:
        raise ReproError("cannot detach a part of a single-node component")
    adjacency: dict = {nid: [] for nid in members}
    for bond in comp.bonds:
        (a, _), (b, _) = tuple(bond)
        adjacency[a].append(b)
        adjacency[b].append(a)
    target = max(1, int(round(fraction * len(members))))
    target = min(target, len(members) - 1)
    for attempt in range(max_attempts):
        shrink = attempt // max(1, max_attempts // 4)
        target_now = max(1, target - shrink * max(1, target // 3 + 1))
        region = {members[rng.randrange(len(members))]}
        frontier = sorted(region)
        while len(region) < target_now and frontier:
            base = frontier[rng.randrange(len(frontier))]
            options = sorted(
                n for n in adjacency[base] if n not in region
            )
            if not options:
                frontier.remove(base)
                continue
            nxt = options[rng.randrange(len(options))]
            region.add(nxt)
            frontier.append(nxt)
        if len(region) != target_now:
            continue
        remainder = set(members) - region
        if not remainder or not _bonds_connect(remainder, comp.bonds):
            continue
        crossing = [
            b
            for b in sorted(comp.bonds, key=bond_sort_key)
            if len({nid for nid, _port in b} & region) == 1
        ]
        for bond in crossing:
            comp.bonds.discard(bond)
            for nid, _port in bond:
                world.note_change(nid)
        world._split_if_disconnected(comp)
        return tuple(sorted(region))
    raise ReproError(
        f"no bond-connected detachment of fraction {fraction} found "
        f"in {max_attempts} attempts"
    )


def _adjacency_connected(adjacency: dict) -> bool:
    """True iff a prebuilt adjacency mapping describes a connected graph."""
    start = next(iter(adjacency))
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for w in adjacency[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(adjacency)


def _bonds_connect(nids: Set[int], bonds) -> bool:
    """True iff the bond graph restricted to ``nids`` is connected."""
    adjacency: dict = {nid: [] for nid in nids}
    for bond in bonds:
        (a, _), (b, _) = tuple(bond)
        if a in adjacency and b in adjacency:
            adjacency[a].append(b)
            adjacency[b].append(a)
    return _adjacency_connected(adjacency)


def _edges_connect(cells: Set[Vec], edges: Set[frozenset]) -> bool:
    adjacency = {c: [] for c in cells}
    for e in edges:
        a, b = tuple(e)
        adjacency[a].append(b)
        adjacency[b].append(a)
    return _adjacency_connected(adjacency)


@dataclass
class RepairResult:
    """Outcome of a repair run."""

    repaired: Shape
    interactions: int
    nodes_attached: int
    bonds_restored: int


def repair_shape(
    damaged: Shape,
    blueprint: Shape,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> RepairResult:
    """Reconstruct ``blueprint`` from its surviving part ``damaged``.

    Missing cells adjacent to present cells are attached one interaction at
    a time in random (fair) order; missing blueprint bonds between present
    cells are re-activated likewise. The repaired shape is verified to equal
    the blueprint exactly (same cells and active edges).

    Raises :class:`ReproError` when ``damaged`` is not a subshape of the
    blueprint (repair would not know where its cells belong).
    """
    if rng is None:
        rng = random.Random(seed)
    blue_cells = set(blueprint.cells)
    if not set(damaged.cells) <= blue_cells:
        raise ReproError("damaged shape has cells outside the blueprint")
    if not set(damaged.edges) <= set(blueprint.edges):
        raise ReproError("damaged shape has bonds the blueprint lacks")
    cells: Set[Vec] = set(damaged.cells)
    edges: Set[frozenset] = set(damaged.edges)
    interactions = 0
    attached = 0
    restored = 0
    while True:
        # Locally detectable repairs: missing bonds between present cells,
        # and missing cells adjacent to a present cell.
        missing_bonds: List[frozenset] = [
            e for e in blueprint.edges
            if e not in edges and all(c in cells for c in e)
        ]
        frontier_cells: List[Vec] = sorted(
            {
                c + d
                for c in cells
                for d in UNIT_VECTORS
                if (c + d) in blue_cells
                and (c + d) not in cells
                and frozenset((c, c + d)) in blueprint.edges
            }
        )
        if not missing_bonds and not frontier_cells:
            break
        pick = rng.randrange(len(missing_bonds) + len(frontier_cells))
        interactions += 1
        if pick < len(missing_bonds):
            edges.add(missing_bonds[pick])
            restored += 1
        else:
            cell = frontier_cells[pick - len(missing_bonds)]
            cells.add(cell)
            attached += 1
            # The arriving node bonds to every blueprint neighbor already
            # present (each bond is one further interaction).
            for d in UNIT_VECTORS:
                other = cell + d
                e = frozenset((cell, other))
                if other in cells and e in blueprint.edges and e not in edges:
                    edges.add(e)
                    restored += 1
                    interactions += 1
    repaired = Shape.from_cells(
        cells, edges, labels=blueprint.label_map or None
    )
    if repaired.cells != blueprint.cells or repaired.edges != blueprint.edges:
        raise SimulationError(
            "repair frontier exhausted without reaching the blueprint — "
            "the blueprint must be connected"
        )
    return RepairResult(repaired, interactions, attached, restored)


def damage_statistics(
    blueprint: Shape,
    fractions: List[float],
    trials: int = 10,
    seed: int = 0,
) -> List[Tuple[float, float, float]]:
    """Repair cost versus damage size (the §8 efficiency experiment).

    For each damage fraction: returns ``(fraction, mean lost cells, mean
    repair interactions)``. The bench asserts interactions grow with the
    damage, not with the blueprint size.
    """
    rng = random.Random(seed)
    rows = []
    for fraction in fractions:
        lost_total = 0
        cost_total = 0
        for _ in range(trials):
            damaged, lost = detach_part(blueprint, fraction, rng=rng)
            res = repair_shape(damaged, blueprint, rng=rng)
            lost_total += len(lost)
            cost_total += res.interactions
        rows.append((fraction, lost_total / trials, cost_total / trials))
    return rows
