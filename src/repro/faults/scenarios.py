"""Scenario adapter for the §8 damage-and-repair workload (``repro.faults``).

Registered into ``repro.experiments.registry``; see that module for the
adapter contract. Mirrors the historical ``repro repair`` command: build
the star blueprint, detach a connected region, then reconstruct it from
the surviving part — detachment and repair share one seeded RNG stream.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.core.scheduler import make_scheduler
from repro.core.simulator import StopReason
from repro.core.world import World
from repro.experiments.registry import Param, ScenarioOutcome, scenario
from repro.faults.injection import FaultySimulation
from repro.faults.repair import detach_part, repair_shape
from repro.machines.shape_programs import expected_shape, star_program
from repro.protocols.line import spanning_line_protocol
from repro.viz.ascii_art import render_shape, render_world


@scenario(
    name="faulty-line",
    summary="§8 line construction under the random link-breakage adversary",
    params=(
        Param("n", "int", 16, help="population size"),
        Param(
            "break_prob", "float", 0.1,
            help="per-step probability one random active bond snaps",
        ),
        Param(
            "max_breaks", "int", 8,
            help="fault budget: stop injecting after this many breakages",
        ),
        Param(
            "max_steps", "int", 20000,
            help="time-step budget for the damaged run",
        ),
    ),
    tags=("faults", "stabilizing"),
    schedulable=True,
    covers=(),
    protocols=(spanning_line_protocol,),
)
def _run_faulty_line(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    """Drive the spanning-line protocol while the §8 adversary snaps bonds.

    With a bounded fault budget the construction genuinely stabilizes after
    the last setback, so record→replay round trips (``repro record
    faulty-line``) cover the out-of-band detach records of the streaming
    trace subsystem on a run that ends on its own terms.
    """
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(params["n"], protocol, leaders=1)
    sim = FaultySimulation(
        world,
        protocol,
        break_prob=params["break_prob"],
        scheduler=make_scheduler(scheduler) if scheduler else None,
        seed=seed,
        max_bonds_broken=params["max_breaks"],
    )
    result = sim.run(max_steps=params["max_steps"])
    return ScenarioOutcome(
        metrics={
            "n": params["n"],
            "break_prob": params["break_prob"],
            "breakages": len(sim.breakages),
            "events": result.events,
            "largest_component": sim.largest_component_size(),
            "components": len(world.components),
        },
        events=result.events,
        stop_reason=result.reason,
        renders={"line": render_world(world, state_char=lambda s: "#")},
    )


@scenario(
    name="repair",
    summary="§8 robustness: detach part of the star, repair from blueprint",
    params=(
        Param("d", "int", 9, help="square dimension of the star blueprint"),
        Param("fraction", "float", 0.3, help="fraction of cells to detach"),
    ),
    tags=("faults", "repair"),
    covers=("repro.faults.repair.repair_shape",),
)
def _run_repair(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    blueprint = expected_shape(star_program(), params["d"])
    rng = random.Random(seed)
    damaged, lost = detach_part(blueprint, params["fraction"], rng=rng)
    result = repair_shape(damaged, blueprint, rng=rng)
    return ScenarioOutcome(
        metrics={
            "d": params["d"],
            "fraction": params["fraction"],
            "blueprint_cells": len(blueprint.cells),
            "detached": len(lost),
            "interactions": result.interactions,
            "nodes_attached": result.nodes_attached,
            "bonds_restored": result.bonds_restored,
            "matches_blueprint": result.repaired.cells == blueprint.cells,
        },
        events=result.interactions,
        stop_reason=StopReason.PREDICATE,
        renders={
            "blueprint": render_shape(blueprint),
            "damaged": render_shape(damaged),
            "repaired": render_shape(result.repaired),
        },
    )
