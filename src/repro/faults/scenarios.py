"""Scenario adapter for the §8 damage-and-repair workload (``repro.faults``).

Registered into ``repro.experiments.registry``; see that module for the
adapter contract. Mirrors the historical ``repro repair`` command: build
the star blueprint, detach a connected region, then reconstruct it from
the surviving part — detachment and repair share one seeded RNG stream.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from repro.core.simulator import StopReason
from repro.experiments.registry import Param, ScenarioOutcome, scenario
from repro.faults.repair import detach_part, repair_shape
from repro.machines.shape_programs import expected_shape, star_program
from repro.viz.ascii_art import render_shape


@scenario(
    name="repair",
    summary="§8 robustness: detach part of the star, repair from blueprint",
    params=(
        Param("d", "int", 9, help="square dimension of the star blueprint"),
        Param("fraction", "float", 0.3, help="fraction of cells to detach"),
    ),
    tags=("faults", "repair"),
    covers=("repro.faults.repair.repair_shape",),
)
def _run_repair(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    blueprint = expected_shape(star_program(), params["d"])
    rng = random.Random(seed)
    damaged, lost = detach_part(blueprint, params["fraction"], rng=rng)
    result = repair_shape(damaged, blueprint, rng=rng)
    return ScenarioOutcome(
        metrics={
            "d": params["d"],
            "fraction": params["fraction"],
            "blueprint_cells": len(blueprint.cells),
            "detached": len(lost),
            "interactions": result.interactions,
            "nodes_attached": result.nodes_attached,
            "bonds_restored": result.bonds_restored,
            "matches_blueprint": result.repaired.cells == blueprint.cells,
        },
        events=result.interactions,
        stop_reason=StopReason.PREDICATE,
        renders={
            "blueprint": render_shape(blueprint),
            "damaged": render_shape(damaged),
            "repaired": render_shape(result.repaired),
        },
    )
