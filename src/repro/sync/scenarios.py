"""Scenario adapter for §8 synchronous rounds (``repro.sync``).

Registered into ``repro.experiments.registry``; see that module for the
adapter contract. The workload floods a one-bit broadcast over a bonded
line for a fixed number of synchronous rounds — the deterministic
component-clock half of the paper's two-speed model.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.simulator import StopReason
from repro.core.world import World
from repro.experiments.registry import Param, ScenarioOutcome, scenario
from repro.protocols.replication import add_line
from repro.sync.model import broadcast_program
from repro.sync.runner import run_component_rounds


@scenario(
    name="sync-broadcast",
    summary="§8 synchronous rounds: one-bit flood over a bonded line",
    params=(
        Param("n", "int", 16, help="nodes in the line"),
        Param("rounds", "int", 8, help="synchronous rounds to execute"),
    ),
    tags=("sync", "rounds"),
    deterministic=True,
    covers=("repro.sync.runner.run_component_rounds",),
)
def _run_sync_broadcast(
    params: Mapping, seed: Optional[int], scheduler: Optional[str]
) -> ScenarioOutcome:
    n, rounds = params["n"], params["rounds"]
    world = World(dimension=2)
    add_line(world, n, "S", internal_state="q", right_state="q")
    program = broadcast_program(source_state="S")
    changes = run_component_rounds(world, program, rounds)
    informed = sum(
        1
        for state in world.states().values()
        if state in ("S", "informed")
    )
    # The flood covers the line iff rounds >= eccentricity (n - 1).
    return ScenarioOutcome(
        metrics={
            "n": n,
            "rounds": rounds,
            "changes": changes,
            "informed": informed,
            "covered": informed == n,
        },
        events=changes,
        stop_reason=(
            StopReason.STABILIZED if informed == n else StopReason.BUDGET
        ),
    )
