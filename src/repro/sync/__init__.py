"""The two-speed refinement of §8: synchronous components, scheduled encounters.

The paper's conclusions propose distinguishing *"the speed of the scheduler
and the internal operation speed of a component: a connected component will
operate in synchronous rounds, where in each round a node observes its
neighborhood and its own state and updates its state based on what it sees
… a connection is formed/dropped if both nodes agree"*.

This subpackage implements that refinement:

* :class:`SynchronousProgram` — a per-round node update rule: each node sees
  its own state and its bonded neighbors' states (per port) and returns a
  new state plus per-port bond proposals; intra-component bond changes
  require the agreement policy (both endpoints by default, either endpoint
  optionally, matching the two variants the paper sketches).
* :class:`TwoSpeedSimulation` — interleaves scheduler *encounters* (the
  classical pairwise interactions of §3, which is how separate components
  meet and bond) with ``rounds_per_encounter`` synchronous rounds inside
  every component.
"""

from repro.sync.model import (
    BondProposal,
    RoundOutcome,
    RoundView,
    SynchronousProgram,
    broadcast_program,
    distance_wave_program,
)
from repro.sync.runner import TwoSpeedSimulation, run_component_rounds

__all__ = [
    "SynchronousProgram",
    "RoundView",
    "RoundOutcome",
    "BondProposal",
    "broadcast_program",
    "distance_wave_program",
    "TwoSpeedSimulation",
    "run_component_rounds",
]
