"""The two-speed execution loop: scheduled encounters + synchronous rounds.

§8's refinement separates two clocks: the (slow, adversarial) scheduler
that brings components into contact, and the (fast, synchronous) internal
operation of each connected component. :class:`TwoSpeedSimulation` realizes
the refinement on top of the unchanged §3 world: after every scheduler
*encounter* (one classical pairwise interaction), every component executes
``rounds_per_encounter`` synchronous rounds of a
:class:`~repro.sync.model.SynchronousProgram`. Fractional rates accumulate
(e.g. ``0.25`` runs one round every fourth encounter), so the full spectrum
from "scheduler much faster" to "components much faster" is expressible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.protocol import Protocol
from repro.core.scheduler import HotScheduler, Scheduler
from repro.core.simulator import Simulation
from repro.core.world import Component, World, bond_of
from repro.errors import SimulationError
from repro.geometry.ports import Port, port_facing
from repro.sync.model import RoundOutcome, RoundView, SynchronousProgram


def _component_views(
    world: World, comp: Component
) -> Dict[int, RoundView]:
    """Build every node's :class:`RoundView` for one synchronous round."""
    views: Dict[int, RoundView] = {}
    decode = world.space.states
    for cell, nid in comp.cells.items():
        rec = world.nodes[nid]
        neighbors: Dict[Port, object] = {}
        adjacent: Dict[Port, object] = {}
        for port in world.ports:
            delta = world.world_port_direction(nid, port)
            other = comp.cells.get(cell + delta)
            if other is None:
                continue
            other_rec = world.nodes[other]
            other_port = port_facing(other_rec.orientation, -delta)
            if bond_of(nid, port, other, other_port) in comp.bonds:
                neighbors[port] = decode[other_rec.sid]
            else:
                adjacent[port] = decode[other_rec.sid]
        views[nid] = RoundView(decode[rec.sid], neighbors, adjacent)
    return views


def run_component_rounds(
    world: World,
    program: SynchronousProgram,
    rounds: int = 1,
) -> int:
    """Execute synchronous rounds on *every* component of the world.

    All nodes of all components update simultaneously within a round (the
    §8 semantics); bond proposals are resolved under the program's
    agreement policy, and components whose bond graph disconnects split.
    Returns the total number of state/bond changes applied.
    """
    if rounds < 0:
        raise SimulationError(f"rounds must be nonnegative: {rounds}")
    changes = 0
    for _ in range(rounds):
        round_changes = 0
        # Snapshot the component list: splits during the round must not
        # re-run the same round on the fragments.
        for cid in list(world.components):
            comp = world.components.get(cid)
            if comp is None or comp.size() == 0:
                continue
            round_changes += _one_round(world, program, comp)
        changes += round_changes
    return changes


def _one_round(
    world: World, program: SynchronousProgram, comp: Component
) -> int:
    views = _component_views(world, comp)
    outcomes: Dict[int, RoundOutcome] = {
        nid: program.rule(view) for nid, view in views.items()
    }
    changes = 0
    # Apply all state updates atomically.
    for nid, outcome in outcomes.items():
        if outcome.state != world.state_of(nid):
            world.set_state(nid, outcome.state)
            changes += 1
    # Resolve bond proposals per adjacent pair (each pair has one facing
    # port pair; both endpoints' proposals are read from their own port).
    dropped = False
    for nid1, nid2 in world.adjacent_pairs(comp):
        ports = world.intra_pair_ports(nid1, nid2)
        if ports is None:  # pragma: no cover - adjacency implies ports
            continue
        p1, p2 = ports
        bond = bond_of(nid1, p1, nid2, p2)
        current = int(bond in comp.bonds)
        decided = program.decide_bond(
            current,
            outcomes[nid1].proposals.get(p1),
            outcomes[nid2].proposals.get(p2),
        )
        if decided == current:
            continue
        if decided == 1:
            comp.bonds.add(bond)
        else:
            comp.bonds.discard(bond)
            dropped = True
        # A bond flip leaves component geometry intact: journal the two
        # endpoints (the fine-grained invalidation signal consumed by
        # incremental schedulers) instead of bumping the whole component's
        # version. A disconnecting drop splits below, which does bump.
        world.note_change(nid1)
        world.note_change(nid2)
        changes += 1
    if dropped:
        world._split_if_disconnected(comp)
    return changes


@dataclass
class TwoSpeedSimulation:
    """Interleaves scheduler encounters with synchronous component rounds.

    Parameters
    ----------
    world, protocol:
        The §3 configuration and the *encounter* protocol (the pairwise
        rules the scheduler drives — typically a constructor from §4/§6).
    program:
        The synchronous per-round program components run internally.
    rounds_per_encounter:
        The speed ratio λ between the internal clock and the scheduler:
        λ = 2 runs two rounds after every encounter, λ = 0.25 one round
        every fourth encounter. Must be nonnegative.
    """

    world: World
    protocol: Protocol
    program: SynchronousProgram
    rounds_per_encounter: float = 1.0
    scheduler: Scheduler = field(default_factory=HotScheduler)
    seed: Optional[int] = None

    encounters: int = 0
    rounds: int = 0
    sync_changes: int = 0

    def __post_init__(self) -> None:
        if self.rounds_per_encounter < 0:
            raise SimulationError(
                f"speed ratio must be nonnegative: {self.rounds_per_encounter}"
            )
        self._sim = Simulation(
            self.world,
            self.protocol,
            scheduler=self.scheduler,
            rng=random.Random(self.seed),
        )
        self._credit = 0.0

    def step(self) -> bool:
        """One encounter plus the accrued synchronous rounds.

        Returns False when both clocks are quiescent: no effective
        encounter is permissible and a full synchronous round changes
        nothing anywhere.
        """
        event = self._sim.step()
        progressed = event is not None
        if progressed:
            self.encounters += 1
            self._credit += self.rounds_per_encounter
            while self._credit >= 1.0:
                self._credit -= 1.0
                self.rounds += 1
                self.sync_changes += run_component_rounds(
                    self.world, self.program, 1
                )
        else:
            # Encounters exhausted; drain the synchronous dynamics.
            self.rounds += 1
            changed = run_component_rounds(self.world, self.program, 1)
            self.sync_changes += changed
            progressed = changed > 0
            if changed:
                # Synchronous bond changes may re-enable encounters.
                self._sim.stabilized = False
        return progressed

    def run(self, max_steps: int = 100_000) -> Tuple[int, int]:
        """Run to two-clock quiescence; returns ``(encounters, rounds)``.

        Raises :class:`SimulationError` when the budget is exhausted first
        (the stock programs all quiesce).
        """
        for _ in range(max_steps):
            if not self.step():
                return self.encounters, self.rounds
        raise SimulationError(
            f"two-speed run exceeded {max_steps} steps without quiescing"
        )
