"""Synchronous per-round node programs (§8's component-speed refinement).

In one synchronous round, every node of a component simultaneously:

1. observes its own state and the states of its bonded neighbors, per local
   port (:class:`RoundView`);
2. computes a new state and, optionally, per-port *bond proposals*
   (:class:`RoundOutcome`).

All state updates of a round are applied atomically. A bond between two
adjacent nodes changes only when the agreement policy is met: with policy
``"both"`` (the paper's default reading) the two endpoints must both
propose the same new bond value; with ``"either"`` one proposal suffices
(the alternative the paper mentions: "allow a link change state if at least
one of the nodes say so").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Mapping, Optional

from repro.errors import ProtocolError
from repro.geometry.ports import Port

State = Hashable

#: A per-port bond proposal: the desired bond value (0 drop / 1 form).
BondProposal = Dict[Port, int]


@dataclass(frozen=True)
class RoundView:
    """What one node sees during a synchronous round.

    ``neighbors`` maps each local port to the state of the node bonded via
    that port (ports with no active bond are absent). ``adjacent`` maps each
    port to the state of a grid-adjacent node of the same component that is
    *not* bonded via that port — these are the pairs to which a "form"
    proposal may apply.
    """

    state: State
    neighbors: Mapping[Port, State]
    adjacent: Mapping[Port, State]


@dataclass(frozen=True)
class RoundOutcome:
    """A node's round decision: its next state and its bond proposals."""

    state: State
    proposals: Mapping[Port, int] = field(default_factory=dict)


#: The synchronous update rule executed by every node, every round.
RoundRule = Callable[[RoundView], RoundOutcome]


class SynchronousProgram:
    """A common synchronous program run by all nodes of every component.

    Parameters
    ----------
    rule:
        The per-round update; must be deterministic and local (depend only
        on the :class:`RoundView`).
    agreement:
        ``"both"`` — a bond changes only if both endpoints propose the same
        new value; ``"either"`` — one endpoint's proposal is enough (ties
        between contradictory proposals keep the current value).
    name:
        Cosmetic.
    """

    def __init__(
        self,
        rule: RoundRule,
        agreement: str = "both",
        name: str = "sync-program",
    ) -> None:
        if agreement not in ("both", "either"):
            raise ProtocolError(
                f"agreement must be 'both' or 'either': {agreement!r}"
            )
        self.rule = rule
        self.agreement = agreement
        self.name = name

    def decide_bond(
        self,
        current: int,
        proposal_a: Optional[int],
        proposal_b: Optional[int],
    ) -> int:
        """Combine the two endpoints' proposals under the agreement policy."""
        if proposal_a is None and proposal_b is None:
            return current
        if self.agreement == "both":
            if proposal_a is not None and proposal_a == proposal_b:
                return proposal_a
            return current
        # "either": a single proposal wins; contradictory ones cancel.
        values = {v for v in (proposal_a, proposal_b) if v is not None}
        if len(values) == 1:
            return values.pop()
        return current


# ----------------------------------------------------------------------
# Stock programs (used by tests, benches and the examples)
# ----------------------------------------------------------------------


def broadcast_program(
    source_state: State = "L",
    susceptible: Optional[Callable[[State], bool]] = None,
) -> SynchronousProgram:
    """One-bit flooding: nodes bonded to an informed node become informed.

    States are ``source_state`` (always informed), ``"informed"``, and
    anything else (uninformed). In each round every uninformed *susceptible*
    node with at least one informed bonded neighbor becomes ``"informed"``
    — the textbook synchronous flood whose completion time is the
    component's eccentricity from the source. ``susceptible`` (default:
    everyone) restricts which states may convert, so the flood can coexist
    with a concurrently running constructor whose control states (e.g. a
    moving leader) must not be overwritten. Used to measure how the
    internal component speed affects information spread (the §8
    experiment).
    """

    def informed(state: State) -> bool:
        return state == source_state or state == "informed"

    def rule(view: RoundView) -> RoundOutcome:
        if (
            not informed(view.state)
            and (susceptible is None or susceptible(view.state))
            and any(informed(s) for s in view.neighbors.values())
        ):
            return RoundOutcome("informed")
        return RoundOutcome(view.state)

    return SynchronousProgram(rule, name="broadcast")


def distance_wave_program(source_state: State = "L") -> SynchronousProgram:
    """BFS distance labeling: each node learns its hop distance to the source.

    Uninformed nodes adopt ``1 + min(neighbor distances)``; the source is
    distance 0. After ``ecc`` rounds (the source's eccentricity) every node
    of the component holds its exact BFS distance — a synchronous-round
    primitive the asynchronous §3 model cannot express without extra states.
    """

    def distance_of(state: State) -> Optional[int]:
        if state == source_state:
            return 0
        if isinstance(state, tuple) and len(state) == 2 and state[0] == "dist":
            return state[1]
        return None

    def rule(view: RoundView) -> RoundOutcome:
        if distance_of(view.state) is not None:
            return RoundOutcome(view.state)
        dists = [
            d
            for d in (distance_of(s) for s in view.neighbors.values())
            if d is not None
        ]
        if dists:
            return RoundOutcome(("dist", 1 + min(dists)))
        return RoundOutcome(view.state)

    return SynchronousProgram(rule, name="distance-wave")
