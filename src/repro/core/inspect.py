"""Protocol introspection: paper-style printing, reachability, lint checks.

The paper measures protocols by their state count `|Q|` and presents them
as tables of effective transitions ``(a, p1), (b, p2), c -> (a', b', c')``.
This module renders :class:`~repro.core.protocol.RuleProtocol` instances in
that notation, computes which states and rules are reachable from the
standard initial configuration, and lints tables for the mistakes that are
easy to make when transcribing or designing rule sets (dead rules,
unreachable states, asymmetric port usage, missing hot-state coverage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.protocol import Rule, RuleProtocol, State
from repro.errors import ProtocolError


def format_rule(rule: Rule) -> str:
    """One transition in the paper's notation."""
    return (
        f"({rule.state1}, {rule.port1.value}), "
        f"({rule.state2}, {rule.port2.value}), {rule.bond} -> "
        f"({rule.new_state1}, {rule.new_state2}, {rule.new_bond})"
    )


def format_protocol(protocol: RuleProtocol) -> str:
    """The full table, Protocol-1-style: header plus one rule per line."""
    lines = [
        f"Protocol {protocol.name}",
        f"|Q| = {protocol.size}, {len(protocol.rules)} effective rules, "
        f"{protocol.dimension}D",
        "delta:",
    ]
    for rule in sorted(
        protocol.rules,
        key=lambda r: (str(r.state1), r.port1.value, str(r.state2), r.port2.value, r.bond),
    ):
        lines.append(f"  {format_rule(rule)}")
    return "\n".join(lines)


def reachable_states(
    protocol: RuleProtocol,
    extra_initial: Tuple[State, ...] = (),
) -> FrozenSet[State]:
    """States reachable from the standard initial configuration.

    Closure over the rule table, starting from the initial state plus the
    leader state (when defined) plus ``extra_initial`` — the states of any
    pre-built structure the protocol operates on (e.g. the ``i``/``e``
    nodes of the seeded parent line in Protocols 4/5). This is an
    over-approximation of dynamic reachability — it ignores geometry and
    multiplicities — but a state outside it can *never* occur, which is
    what the lint needs.
    """
    reached: Set[State] = {protocol.initial_state, *extra_initial}
    if protocol.leader_state is not None:
        reached.add(protocol.leader_state)
    changed = True
    while changed:
        changed = False
        for rule in protocol.rules:
            if rule.state1 in reached and rule.state2 in reached:
                for new in (rule.new_state1, rule.new_state2):
                    if new not in reached:
                        reached.add(new)
                        changed = True
    return frozenset(reached)


def applicable_rules(
    protocol: RuleProtocol,
    extra_initial: Tuple[State, ...] = (),
) -> Tuple[Rule, ...]:
    """Rules whose left-hand states are both reachable."""
    reached = reachable_states(protocol, extra_initial)
    return tuple(
        rule
        for rule in protocol.rules
        if rule.state1 in reached and rule.state2 in reached
    )


@dataclass
class LintReport:
    """Findings of :func:`lint_protocol`; empty lists mean a clean table."""

    unreachable_states: List[State] = field(default_factory=list)
    dead_rules: List[Rule] = field(default_factory=list)
    bond_forming_rules: int = 0
    bond_breaking_rules: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.unreachable_states and not self.dead_rules


def lint_protocol(
    protocol: RuleProtocol,
    extra_initial: Tuple[State, ...] = (),
) -> LintReport:
    """Static checks over a rule table.

    * *unreachable states*: states mentioned by rules (or declared halting/
      output) that the closure from the initial configuration never
      produces;
    * *dead rules*: rules whose left-hand states are unreachable — they can
      never fire;
    * bond-forming/breaking rule counts and structural notes (e.g. a
      protocol that forms bonds but can never break any is monotone, which
      is worth knowing when reasoning about its stabilization).
    """
    reached = reachable_states(protocol, extra_initial)
    report = LintReport()
    for state in sorted(protocol.states, key=str):
        if state not in reached:
            report.unreachable_states.append(state)
    live = set(applicable_rules(protocol, extra_initial))
    for rule in protocol.rules:
        if rule not in live:
            report.dead_rules.append(rule)
    for rule in live:
        if rule.bond == 0 and rule.new_bond == 1:
            report.bond_forming_rules += 1
        elif rule.bond == 1 and rule.new_bond == 0:
            report.bond_breaking_rules += 1
    if report.bond_forming_rules and not report.bond_breaking_rules:
        report.notes.append(
            "monotone bonding: bonds are formed but never broken"
        )
    if not report.bond_forming_rules and not report.bond_breaking_rules:
        report.notes.append("no rule changes any bond (pure state dynamics)")
    return report


def state_graph(protocol: RuleProtocol) -> Dict[State, Set[State]]:
    """The state-transition digraph: edges ``s -> s'`` whenever some rule
    maps an endpoint in ``s`` to ``s'`` (self-loops omitted).

    Useful for visualizing leader phase structures (e.g. Protocol 2's
    phase cycle appears as a cycle of L-states).
    """
    graph: Dict[State, Set[State]] = {}
    for rule in protocol.rules:
        for old, new in (
            (rule.state1, rule.new_state1),
            (rule.state2, rule.new_state2),
        ):
            if old != new:
                graph.setdefault(old, set()).add(new)
    return graph


def assert_well_formed(
    protocol: RuleProtocol,
    extra_initial: Tuple[State, ...] = (),
) -> None:
    """Raise :class:`ProtocolError` when the lint finds dead weight.

    Used by tests to keep the paper-transcribed tables free of unreachable
    states and dead rules. ``extra_initial`` seeds the reachability with
    the states of any pre-built structure (see :func:`reachable_states`).
    """
    report = lint_protocol(protocol, extra_initial)
    if not report.clean:
        problems = []
        if report.unreachable_states:
            problems.append(
                f"unreachable states: {report.unreachable_states!r}"
            )
        if report.dead_rules:
            problems.append(
                "dead rules: "
                + "; ".join(format_rule(r) for r in report.dead_rules)
            )
        raise ProtocolError(
            f"protocol {protocol.name!r} is not well-formed: "
            + " | ".join(problems)
        )
