"""World: the shape configuration ``C = (C_V, C_E)`` of §3 plus its geometry.

The world tracks every node's state and, for nodes bound into components,
their position and orientation within the component's local frame. Frames of
distinct components are unrelated (components drift freely in the
solution); when two components bond, the second is rotated and translated
into the first's frame.

The world also implements the *permissibility* predicate of §3: a pair of
node-ports can interact iff the two ports can be aligned at unit distance
(rotating one whole component, since nodes are rigid within a component)
without any two nodes falling onto the same grid cell.

This dict-of-records store stays the single source of truth. The columnar
backend (:mod:`repro.core.columnar`) mirrors it into flat int arrays for
batch kernels, but syncs exclusively from the change/world-delta journals
this module already emits — the world never writes to (or imports) the
columnar layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import CollisionError, GeometryError, SimulationError
from repro.core.program import StateSpace
from repro.core.protocol import Protocol, State, Update
from repro.geometry.packed import (
    MAX_COORD,
    ComponentGeometry,
    orientation_port_deltas,
    pack,
    pack_delta,
    packed_rotation,
    packed_rotations_mapping,
    unpack,
    unpack_delta,
)
from repro.geometry.ports import (
    PORT_INDEX,
    Port,
    port_facing,
    ports_for_dimension,
    world_direction,
)
from repro.geometry.rotation import Rotation, identity_rotation
from repro.geometry.shape import Shape
from repro.geometry.vec import Vec

#: A bond: unordered pair of (node id, port) endpoints.
Bond = FrozenSet[Tuple[int, Port]]


def bond_of(nid1: int, port1: Port, nid2: int, port2: Port) -> Bond:
    return frozenset(((nid1, port1), (nid2, port2)))


#: One component merge, as journalled for incremental consumers:
#: ``(kept_cid, kept_version_after, absorbed_cid, new_packed_cells,
#: moved_nids)`` — the packed cells newly occupied in the kept component's
#: frame and the node ids that moved into it.
MergeRecord = Tuple[int, int, int, FrozenSet[int], Tuple[int, ...]]

#: One component split (bond removals, surgery excisions):
#: ``(kept_cid, kept_version_after, fragments, vacated, frontier)`` —
#: ``fragments`` lists each departing fragment as ``(new_cid,
#: birth_version, member_nids)``; ``vacated`` is the set of packed cells
#: (in the kept component's frame) the departed nodes used to occupy; and
#: ``frontier`` the surviving node ids grid-adjacent to a vacated cell —
#: exactly the nodes whose open-slot set can grow from the shrinkage.
SplitRecord = Tuple[
    int,
    int,
    Tuple[Tuple[int, int, Tuple[int, ...]], ...],
    FrozenSet[int],
    Tuple[int, ...],
]

#: One intra-component node move (hybrid leaf rotations): ``(cid,
#: version_after, dirtied_nids, vacated, new_cells, frontier)`` — the
#: node(s) whose geometry/bonds changed, the packed cell(s) vacated, the
#: packed cell(s) newly occupied, and the cut frontier of the vacated
#: cells, all in the component's own frame.
MoveRecord = Tuple[
    int, int, Tuple[int, ...], FrozenSet[int], FrozenSet[int], Tuple[int, ...]
]

#: A tagged entry of the unified world-delta log: ``("merge", MergeRecord)``,
#: ``("split", SplitRecord)`` or ``("move", MoveRecord)``, in mutation order.
DeltaRecord = Tuple[str, tuple]


def bond_sort_key(bond: Bond):
    """A deterministic ordering key for bonds.

    Sets of bonds iterate in hash order, which varies across interpreter
    processes (enum identity hashes, string hash randomization); every
    place where bond iteration order can influence an RNG-driven choice
    must sort with this key to keep seeded runs reproducible.
    """
    return tuple(sorted((nid, port.value) for nid, port in bond))


@dataclass(slots=True)
class NodeRecord:
    """Mutable record of one node.

    ``sid`` is the node's state as an *interned id* into the owning
    world's :class:`~repro.core.program.StateSpace` — the representation
    the compiled dispatch fast path reads with zero conversion. Use
    ``World.state_of`` for the public (boundary) state.
    """

    nid: int
    sid: int
    component_id: int
    pos: Vec
    orientation: Rotation


@dataclass(slots=True)
class Component:
    """A connected component: rigid shape in its own local frame.

    ``version`` is the component's geometry/membership counter: it is
    bumped whenever the cell set, node positions/orientations, or
    fragment structure change (merges, splits, moves, surgery). Incremental
    schedulers treat a bump as "every candidate touching a node of this
    component is stale". Per-node changes that leave geometry intact
    (state writes, flips of a single bond) go through the finer-grained
    ``World.note_change`` journal instead.

    ``geom`` is the lazily-built packed-geometry snapshot for the current
    version (see ``World.geometry``); any holder of a stale snapshot
    notices through the version key, so direct mutators of ``cells`` /
    node positions only have to keep bumping ``version``, as before.
    """

    cid: int
    cells: Dict[Vec, int] = field(default_factory=dict)  # cell -> node id
    bonds: Set[Bond] = field(default_factory=set)
    version: int = 0
    geom: Optional[ComponentGeometry] = field(
        default=None, repr=False, compare=False
    )

    def node_ids(self) -> List[int]:
        return list(self.cells.values())

    def size(self) -> int:
        return len(self.cells)


@dataclass(frozen=True, slots=True)
class Candidate:
    """A permissible interaction the scheduler may select.

    ``rotation``/``translation`` describe how the second node's component is
    placed into the first's frame (``None`` for intra-component pairs, where
    geometry is already shared). ``bond`` is the current state of the edge
    between the two ports.
    """

    nid1: int
    port1: Port
    nid2: int
    port2: Port
    bond: int
    rotation: Optional[Rotation] = None
    translation: Optional[Vec] = None

    @property
    def intra(self) -> bool:
        return self.rotation is None


class World:
    """The full configuration of the solution.

    Nodes are created free (singleton components). The world exposes
    permissibility checks, candidate enumeration/sampling support, and the
    interaction application logic (state updates, bonding with component
    merge, unbonding with component split).
    """

    #: Change-journal bound: beyond this many unconsumed entries the oldest
    #: half is dropped and lagging consumers fall back to a full rebuild.
    CHANGE_LOG_LIMIT = 65536

    #: Delta-journal bound, same truncation policy: a lagging consumer sees
    #: ``deltas_since(...) is None`` and falls back to coarse invalidation.
    DELTA_LOG_LIMIT = 4096

    def __init__(self, dimension: int = 2) -> None:
        if dimension not in (2, 3):
            raise SimulationError(f"unsupported dimension: {dimension!r}")
        self.dimension = dimension
        self.ports: Tuple[Port, ...] = ports_for_dimension(dimension)
        self.nodes: Dict[int, NodeRecord] = {}
        self.components: Dict[int, Component] = {}
        #: The world's state-interning space. Node records store interned
        #: ids (``NodeRecord.sid``); boundary methods (``add_*``,
        #: ``state_of``, ``states``, renders) convert at the edge. Bound
        #: simulations swap this for the protocol's compiled space via
        #: :meth:`adopt_space` so dispatch reads ids with no translation.
        self.space = StateSpace()
        #: Index of node ids by current *interned* state id (kept in sync
        #: by set_state; empty entries are removed). The public-state view
        #: is the :attr:`by_state` property; hot paths use this directly.
        self.by_sid: Dict[int, Set[int]] = {}
        self._next_nid = 0
        self._next_cid = 0
        # Change journal: node ids whose state / bond endpoints changed,
        # consumed by incremental schedulers (see repro.core.candidates).
        # Geometry changes are signalled by Component.version instead.
        self._change_log: List[int] = []
        self._change_base = 0
        # World-delta journal: one tagged record per structural mutation —
        # merges, splits (incl. surgery excisions), intra-component moves —
        # letting incremental consumers prune the fallout precisely instead
        # of dirtying whole components (see DeltaRecord / deltas_since).
        self._delta_log: List[DeltaRecord] = []
        self._delta_base = 0

    # ------------------------------------------------------------------
    # Change journal (consumed by incremental candidate caches)
    # ------------------------------------------------------------------

    def note_change(self, nid: int) -> None:
        """Record that a node's interaction-relevant attributes changed.

        Called internally on state writes, interaction endpoints, and node
        creation; external surgery that mutates component *geometry*
        signals through ``Component.version`` bumps instead. Consumers
        (``EffectiveCandidateCache``) read the journal via
        :meth:`changes_since`.
        """
        log = self._change_log
        log.append(nid)
        if len(log) > self.CHANGE_LOG_LIMIT:
            drop = len(log) // 2
            del log[:drop]
            self._change_base += drop

    def change_cursor(self) -> int:
        """The journal position *after* all changes recorded so far."""
        return self._change_base + len(self._change_log)

    def changes_since(self, cursor: int) -> Optional[Set[int]]:
        """Node ids journalled at or after ``cursor``.

        Returns ``None`` when the journal has been truncated past the
        cursor — the consumer must fall back to a full re-scan.
        """
        if cursor < self._change_base:
            return None
        return set(self._change_log[cursor - self._change_base:])

    def _note_delta(self, kind: str, record: tuple) -> None:
        log = self._delta_log
        log.append((kind, record))
        if len(log) > self.DELTA_LOG_LIMIT:
            drop = len(log) // 2
            del log[:drop]
            self._delta_base += drop

    def delta_cursor(self) -> int:
        """The delta-journal position *after* all records so far."""
        return self._delta_base + len(self._delta_log)

    def deltas_since(self, cursor: int) -> Optional[List[DeltaRecord]]:
        """Tagged delta records journalled at or after ``cursor``, in
        mutation order (merges, splits and moves interleave exactly as they
        happened, so a consumer can follow each component's version trail
        record by record).

        Returns ``None`` when the journal has been truncated past the
        cursor — the consumer must treat every version bump coarsely.
        """
        if cursor < self._delta_base:
            return None
        return self._delta_log[cursor - self._delta_base:]

    def _split_frontier(
        self, comp: Component, departed_positions: Iterable[Vec]
    ) -> Tuple[FrozenSet[int], Tuple[int, ...]]:
        """Packed vacated cells plus the cut frontier of a shrinkage.

        ``departed_positions`` are the (kept-frame) cells that just became
        unoccupied; the frontier is every surviving node of ``comp``
        grid-adjacent to one of them — the only nodes whose open-slot set
        the shrinkage can grow. Call *after* ``comp.cells`` reflects the
        removal.
        """
        vacated = []
        frontier: Set[int] = set()
        cells = comp.cells
        units = _unit_deltas(self.dimension)
        for pos in departed_positions:
            vacated.append(pack(pos))
            for delta in units:
                nid = cells.get(pos + delta)
                if nid is not None:
                    frontier.add(nid)
        return frozenset(vacated), tuple(sorted(frontier))

    # ------------------------------------------------------------------
    # Packed geometry snapshots
    # ------------------------------------------------------------------

    def geometry(self, comp: Component) -> ComponentGeometry:
        """The packed-geometry snapshot of a component, rebuilt lazily when
        ``Component.version`` moves.

        All hot-path geometry — collision checks, open slots, adjacency,
        rotated cell sets — reads from this snapshot; ``Vec``-typed results
        are materialized only at the public API boundary.
        """
        g = comp.geom
        if g is None or g.version != comp.version:
            g = ComponentGeometry(comp, self.nodes, self.ports, self.dimension)
            comp.geom = g
        return g

    # ------------------------------------------------------------------
    # Population setup
    # ------------------------------------------------------------------

    def add_free_node(self, state: State) -> int:
        """Add a free (isolated) node in the given state; returns its id."""
        nid = self._next_nid
        self._next_nid += 1
        cid = self._next_cid
        self._next_cid += 1
        sid = self.space.intern(state)
        self.nodes[nid] = NodeRecord(nid, sid, cid, Vec(0, 0, 0), identity_rotation)
        comp = Component(cid)
        comp.cells[Vec(0, 0, 0)] = nid
        self.components[cid] = comp
        self.by_sid.setdefault(sid, set()).add(nid)
        self.note_change(nid)
        return nid

    def add_component_from_cells(
        self,
        states: Dict[Vec, State],
        bonds: Optional[Iterable[Tuple[Vec, Vec]]] = None,
    ) -> Dict[Vec, int]:
        """Add a pre-assembled component (identity orientations).

        ``states`` maps cells to node states; ``bonds`` lists cell pairs to
        bond (all adjacent pairs when omitted). The bond graph must connect
        the cells. Returns the cell -> node id mapping. This is how the
        generic constructors of §6-§7 seed worlds with already-built lines,
        squares, and shapes.
        """
        cid = self._next_cid
        self._next_cid += 1
        comp = Component(cid)
        nids: Dict[Vec, int] = {}
        for cell in sorted(states):
            nid = self._next_nid
            self._next_nid += 1
            sid = self.space.intern(states[cell])
            rec = NodeRecord(nid, sid, cid, cell, identity_rotation)
            self.nodes[nid] = rec
            comp.cells[cell] = nid
            nids[cell] = nid
            self.by_sid.setdefault(sid, set()).add(nid)
            self.note_change(nid)
        if bonds is None:
            pairs = [
                (cell, cell + delta)
                for cell in states
                for delta in _positive_units(self.dimension)
                if cell + delta in states
            ]
        else:
            pairs = [(a, b) for a, b in bonds]
        for a, b in pairs:
            if (a - b).manhattan() != 1:
                raise SimulationError(f"bond between non-adjacent cells: {a}, {b}")
            pa = port_facing(identity_rotation, b - a)
            pb = port_facing(identity_rotation, a - b)
            comp.bonds.add(bond_of(nids[a], pa, nids[b], pb))
        self.components[cid] = comp
        if comp.size() > 1:
            self.check_component_connected(comp)
        return nids

    def check_component_connected(self, comp: Component) -> None:
        """Raise unless the component's bond graph is connected."""
        adjacency: Dict[int, List[int]] = {nid: [] for nid in comp.cells.values()}
        for bond in comp.bonds:
            (a, _), (b, _) = tuple(bond)
            adjacency[a].append(b)
            adjacency[b].append(a)
        start = next(iter(adjacency))
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        if len(seen) != comp.size():
            raise SimulationError(f"component {comp.cid} bond graph disconnected")

    @staticmethod
    def of_free_nodes(
        n: int,
        protocol: Protocol,
        leaders: int = 0,
    ) -> "World":
        """A solution of ``n`` free nodes; the first ``leaders`` nodes start
        in the protocol's leader state, the rest in its initial state."""
        world = World(protocol.dimension)
        program = protocol.program
        if program is not None:
            # Share the protocol's canonical interning up front so ids are
            # rule-sort-derived and the dispatch fast path never converts.
            world.adopt_space(program.space)
        for i in range(n):
            if i < leaders:
                if protocol.leader_state is None:
                    raise SimulationError("protocol defines no leader state")
                world.add_free_node(protocol.leader_state)
            else:
                world.add_free_node(protocol.initial_state)
        return world

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The population size n."""
        return len(self.nodes)

    def state_of(self, nid: int) -> State:
        return self.space.states[self.nodes[nid].sid]

    def sid_of(self, nid: int) -> int:
        """The node's state as an interned id (see :attr:`space`)."""
        return self.nodes[nid].sid

    def set_state(self, nid: int, state: State) -> None:
        rec = self.nodes[nid]
        sid = self.space.intern(state)
        if rec.sid == sid:
            return
        old = self.by_sid.get(rec.sid)
        if old is not None:
            old.discard(nid)
            if not old:
                del self.by_sid[rec.sid]
        rec.sid = sid
        self.by_sid.setdefault(sid, set()).add(nid)
        self.note_change(nid)

    @property
    def by_state(self) -> Dict[State, Set[int]]:
        """Node-id index keyed by *public* state — a fresh view built from
        the interned :attr:`by_sid` index. Convenient for tests and
        one-shot queries; per-state hot paths should use
        :meth:`nodes_in_state` (no full-dict build) or :attr:`by_sid`.
        """
        decode = self.space.states
        return {decode[sid]: members for sid, members in self.by_sid.items()}

    def nodes_in_state(self, state: State) -> Set[int]:
        """The (live) set of node ids currently in ``state``; treat as
        read-only. Empty set when no node has ever entered the state."""
        sid = self.space.get_id(state)
        if sid is None:
            return set()
        return self.by_sid.get(sid, set())

    def adopt_space(self, space: StateSpace) -> None:
        """Re-key the world onto another interning space (idempotent).

        Called when a simulation binds a protocol: the world takes the
        protocol program's canonical space so dispatch compares ids
        without translation. Public states are untouched — only the
        internal ids are rewritten — so no journal entry is needed and
        seeded trajectories are unaffected.
        """
        if space is self.space:
            return
        old = self.space
        self.space = space
        if not self.nodes:
            return
        remap: Dict[int, int] = {}
        for rec in self.nodes.values():
            new = remap.get(rec.sid)
            if new is None:
                remap[rec.sid] = new = space.intern(old.states[rec.sid])
            rec.sid = new
        self.by_sid = {
            remap[sid]: members for sid, members in self.by_sid.items()
        }

    def component_of(self, nid: int) -> Component:
        return self.components[self.nodes[nid].component_id]

    def is_free(self, nid: int) -> bool:
        """True iff the node is alone in its component."""
        return self.component_of(nid).size() == 1

    def free_node_ids(self) -> List[int]:
        return [nid for nid in self.nodes if self.is_free(nid)]

    def states(self) -> Dict[int, State]:
        decode = self.space.states
        return {nid: decode[rec.sid] for nid, rec in self.nodes.items()}

    def bond_state(self, nid1: int, port1: Port, nid2: int, port2: Port) -> int:
        """The 0/1 state of the edge between two node-ports (C_E of §3)."""
        rec1, rec2 = self.nodes[nid1], self.nodes[nid2]
        if rec1.component_id != rec2.component_id:
            return 0
        comp = self.components[rec1.component_id]
        return int(bond_of(nid1, port1, nid2, port2) in comp.bonds)

    def world_port_direction(self, nid: int, port: Port) -> Vec:
        """Direction of a node's port in its component's frame."""
        rec = self.nodes[nid]
        return world_direction(port, rec.orientation)

    # ------------------------------------------------------------------
    # Permissibility (the geometric constraint of §3)
    # ------------------------------------------------------------------

    def intra_pair_ports(self, nid1: int, nid2: int) -> Optional[Tuple[Port, Port]]:
        """For two nodes of the same component at unit distance, the unique
        pair of ports facing each other; ``None`` if not adjacent."""
        rec1, rec2 = self.nodes[nid1], self.nodes[nid2]
        if rec1.component_id != rec2.component_id:
            return None
        delta = rec2.pos - rec1.pos
        if delta.manhattan() != 1:
            return None
        p1 = port_facing(rec1.orientation, delta)
        p2 = port_facing(rec2.orientation, -delta)
        return p1, p2

    def intra_candidate(self, nid1: int, nid2: int) -> Optional[Candidate]:
        """The unique intra-component candidate for an adjacent pair."""
        ports = self.intra_pair_ports(nid1, nid2)
        if ports is None:
            return None
        p1, p2 = ports
        bond = self.bond_state(nid1, p1, nid2, p2)
        return Candidate(nid1, p1, nid2, p2, bond)

    def check_intra(
        self, nid1: int, port1: Port, nid2: int, port2: Port
    ) -> Optional[Candidate]:
        """Validate a same-component candidate with explicit ports."""
        ports = self.intra_pair_ports(nid1, nid2)
        if ports is None or ports != (port1, port2):
            return None
        bond = self.bond_state(nid1, port1, nid2, port2)
        return Candidate(nid1, port1, nid2, port2, bond)

    def _packed_alignments(
        self,
        rec1: NodeRecord,
        port1: Port,
        rec2: NodeRecord,
        port2: Port,
        g1: ComponentGeometry,
        g2: ComponentGeometry,
    ) -> List[Tuple[Rotation, int]]:
        """Collision-free placements as (rotation, packed translation).

        The §3 permissibility kernel: everything — port directions, the
        target slot, the rotated second component, the overlap probes — is
        packed-int arithmetic against cached tables; no ``Vec`` or
        ``Rotation`` application happens per cell.
        """
        d1 = orientation_port_deltas(rec1.orientation)[PORT_INDEX[port1]]
        occ1 = g1.occ
        target = g1.pos_of[rec1.nid] + d1
        if target in occ1:
            return []  # the slot is already occupied within comp1
        d2 = orientation_port_deltas(rec2.orientation)[PORT_INDEX[port2]]
        pos2 = g2.pos_of[rec2.nid]
        placements: List[Tuple[Rotation, int]] = []
        for rot in packed_rotations_mapping(d2, -d1, self.dimension):
            trans = target - packed_rotation(rot)(pos2)
            for cell in g2.rotated(rot):
                if cell + trans in occ1:
                    break
            else:
                placements.append((rot, trans))
        return placements

    def inter_alignments(
        self, nid1: int, port1: Port, nid2: int, port2: Port
    ) -> List[Tuple[Rotation, Vec]]:
        """Collision-free placements aligning ``port2`` of ``nid2``'s
        component opposite ``port1`` of ``nid1``'s component.

        Returns the (rotation, translation) pairs to apply to the second
        component; one candidate per element. Empty when every alignment
        would make some node fall over another (§3's overlap restriction).
        In 2D there is at most one alignment; in 3D up to four.
        """
        rec1, rec2 = self.nodes[nid1], self.nodes[nid2]
        if rec1.component_id == rec2.component_id:
            return []
        g1 = self.geometry(self.components[rec1.component_id])
        g2 = self.geometry(self.components[rec2.component_id])
        return [
            (rot, unpack_delta(trans))
            for rot, trans in self._packed_alignments(
                rec1, port1, rec2, port2, g1, g2
            )
        ]

    def inter_candidates(
        self, nid1: int, port1: Port, nid2: int, port2: Port
    ) -> List[Candidate]:
        """All permissible inter-component candidates for a node-port pair."""
        return [
            Candidate(nid1, port1, nid2, port2, 0, rot, trans)
            for rot, trans in self.inter_alignments(nid1, port1, nid2, port2)
        ]

    def open_slots(self, comp: Component) -> List[Tuple[int, Port]]:
        """Node-ports of a component whose adjacent cell is unoccupied.

        Only these ports can take part in inter-component interactions.
        Served from the component's version-keyed packed-geometry snapshot;
        recomputed only when the component's geometry actually changes.
        """
        return list(self.geometry(comp).slots())

    def adjacent_pairs(self, comp: Component) -> List[Tuple[int, int]]:
        """Unordered grid-adjacent node pairs within a component.

        Served from the version-keyed packed-geometry snapshot, like
        :meth:`open_slots`.
        """
        return list(self.geometry(comp).pairs())

    # ------------------------------------------------------------------
    # Candidate enumeration (reference implementation)
    # ------------------------------------------------------------------

    def enumerate_candidates(self) -> Iterator[Candidate]:
        """Every permissible interaction of the current configuration.

        This is the reference enumeration used by the exact uniform
        scheduler and by tests; samplers must agree with its support.
        """
        # Intra-component: one candidate per grid-adjacent node pair.
        for comp in self.components.values():
            for nid1, nid2 in self.geometry(comp).pairs():
                cand = self.intra_candidate(nid1, nid2)
                if cand is not None:
                    yield cand
        # Inter-component: every collision-free alignment of port pairs.
        comps = sorted(self.components.values(), key=lambda c: c.cid)
        for ca, cb in itertools.combinations(comps, 2):
            slots_a = self.geometry(ca).slots()
            for nid2 in cb.node_ids():
                for nid1, p1 in slots_a:
                    for p2 in self.ports:
                        yield from self.inter_candidates(nid1, p1, nid2, p2)

    def candidate_count(self) -> int:
        """|Perm|: the number of permissible interactions (exact).

        Counts from the cached per-component slot/pair tables and the packed
        alignment kernel instead of materializing every ``Candidate`` of the
        full enumeration: intra pairs contribute exactly one candidate each,
        and inter pairs contribute one per collision-free alignment.
        """
        comps = sorted(self.components.values(), key=lambda c: c.cid)
        geoms = [self.geometry(c) for c in comps]
        total = sum(len(g.pairs()) for g in geoms)
        nodes = self.nodes
        ports = self.ports
        for (ga, gb) in itertools.combinations(geoms, 2):
            slots_a = ga.slots()
            if not slots_a:
                continue
            for nid2 in gb.pos_of:
                rec2 = nodes[nid2]
                for nid1, p1 in slots_a:
                    for p2 in ports:
                        total += len(
                            self._packed_alignments(
                                nodes[nid1], p1, rec2, p2, ga, gb
                            )
                        )
        return total

    # ------------------------------------------------------------------
    # Applying an interaction
    # ------------------------------------------------------------------

    def apply(self, cand: Candidate, update: Update) -> None:
        """Apply an effective update to a selected candidate.

        Updates the two node states and the bond, merging the two components
        when a bond forms across components and splitting when a removed
        bond disconnects a component.
        """
        s1, s2, new_bond = update
        rec1, rec2 = self.nodes[cand.nid1], self.nodes[cand.nid2]
        self.set_state(cand.nid1, s1)
        self.set_state(cand.nid2, s2)
        # Journal both endpoints unconditionally: the bond between them may
        # flip even when neither state changes.
        self.note_change(cand.nid1)
        self.note_change(cand.nid2)
        same = rec1.component_id == rec2.component_id
        if same:
            comp = self.components[rec1.component_id]
            bond = bond_of(cand.nid1, cand.port1, cand.nid2, cand.port2)
            had = bond in comp.bonds
            if new_bond and not had:
                # Geometry is untouched by an intra bond flip; the endpoint
                # journal entries above are the invalidation signal.
                comp.bonds.add(bond)
            elif not new_bond and had:
                comp.bonds.discard(bond)
                self._split_if_disconnected(comp)
        else:
            if new_bond:
                if cand.rotation is None or cand.translation is None:
                    raise SimulationError(
                        "inter-component bonding requires a placement"
                    )
                self._merge(cand)
            # else: they touched and drifted apart; states already updated.

    def _merge(self, cand: Candidate) -> None:
        rec1, rec2 = self.nodes[cand.nid1], self.nodes[cand.nid2]
        comp1 = self.components[rec1.component_id]
        comp2 = self.components[rec2.component_id]
        rot = cand.rotation
        trans = cand.translation
        assert rot is not None and trans is not None
        # Placement on the packed representation: the rotated cell tuple is
        # usually already cached from the permissibility check that produced
        # the candidate, so the merge re-derives each landing cell with one
        # int add and re-validates collisions against the packed occupancy.
        g1 = self.geometry(comp1)
        g2 = self.geometry(comp2)
        # Every landing coordinate is bounded by |trans_i| + the rotated
        # component's Chebyshev radius; reject placements that could leave
        # the packed field range instead of silently wrapping a bit field.
        if (
            abs(trans.x) + g2.radius > MAX_COORD
            or abs(trans.y) + g2.radius > MAX_COORD
            or abs(trans.z) + g2.radius > MAX_COORD
        ):
            raise GeometryError(
                f"merge translation {trans!r} would place component "
                f"{comp2.cid} outside the packed coordinate range "
                f"±{MAX_COORD}; raise repro.geometry.packed.BITS"
            )
        tpacked = pack_delta(trans)
        occ1 = g1.occ
        new_cells: List[int] = []
        moved: List[int] = []
        for nid, rcell in zip(g2.cells.values(), g2.rotated(rot)):
            npacked = rcell + tpacked
            if npacked in occ1:
                raise CollisionError(
                    f"merge places node {nid} over occupied cell "
                    f"{unpack(npacked)!r}"
                )
            rec = self.nodes[nid]
            rec.pos = unpack(npacked)
            rec.orientation = rot.compose(rec.orientation)
            rec.component_id = comp1.cid
            comp1.cells[rec.pos] = nid
            new_cells.append(npacked)
            moved.append(nid)
        comp1.bonds.update(comp2.bonds)
        comp1.bonds.add(bond_of(cand.nid1, cand.port1, cand.nid2, cand.port2))
        comp1.version += 1
        del self.components[comp2.cid]
        self._note_delta(
            "merge",
            (
                comp1.cid,
                comp1.version,
                comp2.cid,
                frozenset(new_cells),
                tuple(moved),
            ),
        )

    def _split_if_disconnected(self, comp: Component) -> None:
        """After a bond removal, split the component into bond-connected
        fragments; each fragment keeps its coordinates in a fresh frame."""
        adjacency: Dict[int, List[int]] = {nid: [] for nid in comp.cells.values()}
        for bond in comp.bonds:
            (a, _), (b, _) = tuple(bond)
            adjacency[a].append(b)
            adjacency[b].append(a)
        unseen = set(adjacency)
        groups: List[Set[int]] = []
        while unseen:
            start = next(iter(unseen))
            group = {start}
            stack = [start]
            unseen.discard(start)
            while stack:
                v = stack.pop()
                for w in adjacency[v]:
                    if w in unseen:
                        unseen.discard(w)
                        group.add(w)
                        stack.append(w)
            groups.append(group)
        if len(groups) <= 1:
            return
        # Deterministic: largest fragment keeps the cid, ties by least nid
        # (groups themselves are discovered in set-iteration order, which
        # is hash-dependent — the sort must fully decide).
        groups.sort(key=lambda g: (-len(g), min(g)))
        keep = groups[0]
        # Fragment frames inherit the old coordinates, so the departed
        # positions double as the kept frame's vacated cells below.
        departed_positions = [
            self.nodes[nid].pos for group in groups[1:] for nid in group
        ]
        fragments: List[Tuple[int, int, Tuple[int, ...]]] = []
        for group in groups[1:]:
            cid = self._next_cid
            self._next_cid += 1
            newc = Component(cid)
            for nid in group:
                rec = self.nodes[nid]
                rec.component_id = cid
                newc.cells[rec.pos] = nid
            newc.bonds = {
                b for b in comp.bonds if all(nid in group for nid, _ in b)
            }
            self.components[cid] = newc
            fragments.append((cid, newc.version, tuple(sorted(group))))
        comp.cells = {
            cell: nid for cell, nid in comp.cells.items() if nid in keep
        }
        comp.bonds = {b for b in comp.bonds if all(nid in keep for nid, _ in b)}
        comp.version += 1
        vacated, frontier = self._split_frontier(comp, departed_positions)
        self._note_delta(
            "split",
            (comp.cid, comp.version, tuple(fragments), vacated, frontier),
        )

    # ------------------------------------------------------------------
    # Surgery (used by orchestrated constructors; see DESIGN.md)
    # ------------------------------------------------------------------

    def free_singleton(self, nid: int, state: State) -> None:
        """Cut all of a node's bonds and release it as a free node.

        This is the "release into the solution" operation the §6.2 leader
        performs on nodes of incomplete replications. The remainder of the
        component is split into its bond-connected fragments.
        """
        rec = self.nodes[nid]
        comp = self.components[rec.component_id]
        comp.bonds = {b for b in comp.bonds if all(x != nid for x, _ in b)}
        if comp.size() > 1:
            old_pos = rec.pos
            del comp.cells[rec.pos]
            comp.version += 1
            cid = self._next_cid
            self._next_cid += 1
            single = Component(cid)
            rec.component_id = cid
            rec.pos = Vec(0, 0, 0)
            rec.orientation = identity_rotation
            single.cells[rec.pos] = nid
            self.components[cid] = single
            # Journal the excision as a split: the freed node is a
            # one-node fragment, its old cell the vacated one. A further
            # disconnection of the remainder journals its own record.
            vacated, frontier = self._split_frontier(comp, (old_pos,))
            self._note_delta(
                "split",
                (
                    comp.cid,
                    comp.version,
                    ((cid, single.version, (nid,)),),
                    vacated,
                    frontier,
                ),
            )
            self._resplit(comp)
        self.set_state(nid, state)
        self.note_change(nid)

    def note_move(
        self,
        comp: Component,
        nid: int,
        old_pos: Vec,
        new_pos: Vec,
        also_dirty: Iterable[int] = (),
    ) -> None:
        """Bump a component's version for an intra-component node move and
        journal it as a fine-grained world delta.

        Call *after* ``comp.cells`` and the node record reflect the move
        (``old_pos`` vacated, ``new_pos`` occupied). ``also_dirty`` names
        further nodes whose interaction-relevant attributes changed with
        the move — e.g. the pivot of a hybrid leaf rotation, whose bond
        port is re-derived from the new geometry. Incremental consumers
        then treat the move as shrinkage at ``old_pos`` plus growth at
        ``new_pos`` instead of a coarse whole-component sweep.
        """
        comp.version += 1
        vacated, frontier = self._split_frontier(comp, (old_pos,))
        dirtied = tuple(sorted({nid, *also_dirty}))
        self._note_delta(
            "move",
            (
                comp.cid,
                comp.version,
                dirtied,
                vacated,
                frozenset((pack(new_pos),)),
                frontier,
            ),
        )

    def _resplit(self, comp: Component) -> None:
        """Split a component whose bond graph may have become disconnected."""
        if comp.size() == 0:
            del self.components[comp.cid]
            return
        if comp.size() == 1:
            return
        adjacency: Dict[int, List[int]] = {n: [] for n in comp.cells.values()}
        for bond in comp.bonds:
            (a, _), (b, _) = tuple(bond)
            adjacency[a].append(b)
            adjacency[b].append(a)
        start = next(iter(adjacency))
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        if len(seen) == comp.size():
            return
        # Reuse the bond-removal splitter by rebuilding groups.
        self._split_if_disconnected(comp)

    def transplant_line(
        self,
        line_nids: List[int],
        target_cells: List[Vec],
        into_cid: int,
        new_state: State,
        bond_cells: bool = True,
    ) -> None:
        """Move a free line component into another component, cell by cell.

        ``line_nids`` (in order) land on ``target_cells`` (grid cells of the
        destination component's frame, which must be unoccupied); states are
        set to ``new_state`` and bonds are created between consecutive line
        cells and, when ``bond_cells``, to any adjacent occupied cell of the
        destination. Orientations must be identity (all paper constructions
        bond opposite ports, so this always holds here).
        """
        if len(line_nids) != len(target_cells):
            raise SimulationError("transplant: length mismatch")
        target = self.components[into_cid]
        src_comp = self.components[self.nodes[line_nids[0]].component_id]
        if any(self.nodes[nid].component_id != src_comp.cid for nid in line_nids):
            raise SimulationError("transplant: nodes from different components")
        if set(src_comp.cells.values()) != set(line_nids):
            raise SimulationError("transplant: component has extra nodes")
        for cell in target_cells:
            if cell in target.cells:
                raise CollisionError(f"transplant target {cell!r} occupied")
        src_cid = src_comp.cid
        for nid, cell in zip(line_nids, target_cells):
            rec = self.nodes[nid]
            if rec.orientation is not identity_rotation and rec.orientation != identity_rotation:
                raise SimulationError("transplant requires identity orientations")
            rec.component_id = into_cid
            rec.pos = cell
            target.cells[cell] = nid
            self.set_state(nid, new_state)
            self.note_change(nid)
        del self.components[src_cid]
        # Bond consecutive line cells and (optionally) all adjacent target cells.
        for nid, cell in zip(line_nids, target_cells):
            for delta in _positive_units(self.dimension):
                other_cell = cell + delta
                other = target.cells.get(other_cell)
                if other is None:
                    continue
                if not bond_cells and other not in line_nids:
                    continue
                pa = port_facing(identity_rotation, delta)
                pb = port_facing(identity_rotation, -delta)
                target.bonds.add(bond_of(nid, pa, other, pb))
        target.version += 1
        # Journalled as a merge: the line is the absorbed component, the
        # landing cells the newly occupied ones — occupancy growth, so the
        # standard merge-delta pruning applies verbatim.
        self._note_delta(
            "merge",
            (
                into_cid,
                target.version,
                src_cid,
                frozenset(pack(c) for c in target_cells),
                tuple(line_nids),
            ),
        )

    # ------------------------------------------------------------------
    # Shape extraction
    # ------------------------------------------------------------------

    def component_shape(self, cid: int, with_states: bool = False) -> Shape:
        """The geometric shape of a component (normalized to the origin)."""
        comp = self.components[cid]
        cells = list(comp.cells)
        edges = []
        for bond in comp.bonds:
            (a, _), (b, _) = tuple(bond)
            edges.append(frozenset((self.nodes[a].pos, self.nodes[b].pos)))
        labels = None
        if with_states:
            decode = self.space.states
            labels = {
                cell: decode[self.nodes[nid].sid]
                for cell, nid in comp.cells.items()
            }
        return Shape.from_cells(cells, edges, labels).normalize()

    def output_shapes(self, protocol: Protocol) -> List[Shape]:
        """The output ``G(C)`` of §3: shapes induced by output-state nodes
        and the active edges between them (one Shape per output group)."""
        decode = self.space.states
        out_nodes = {
            nid
            for nid, rec in self.nodes.items()
            if protocol.is_output(decode[rec.sid])
        }
        shapes: List[Shape] = []
        for comp in self.components.values():
            members = [nid for nid in comp.cells.values() if nid in out_nodes]
            if not members:
                continue
            member_set = set(members)
            adjacency: Dict[int, List[int]] = {nid: [] for nid in members}
            kept_bonds = []
            for bond in comp.bonds:
                (a, _), (b, _) = tuple(bond)
                if a in member_set and b in member_set:
                    adjacency[a].append(b)
                    adjacency[b].append(a)
                    kept_bonds.append((a, b))
            unseen = set(members)
            while unseen:
                start = next(iter(unseen))
                group = {start}
                stack = [start]
                unseen.discard(start)
                while stack:
                    v = stack.pop()
                    for w in adjacency[v]:
                        if w in unseen:
                            unseen.discard(w)
                            group.add(w)
                            stack.append(w)
                cells = [self.nodes[nid].pos for nid in group]
                edges = [
                    frozenset((self.nodes[a].pos, self.nodes[b].pos))
                    for a, b in kept_bonds
                    if a in group and b in group
                ]
                shapes.append(Shape.from_cells(cells, edges).normalize())
        return shapes

    # ------------------------------------------------------------------
    # Invariant checking (used by tests and debug runs)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the structural invariants of a valid configuration.

        Raises :class:`SimulationError` on any violation: stale cell maps,
        overlapping nodes, bonds between non-facing ports, or components
        whose bond graph is disconnected.
        """
        seen_nodes = set()
        for cid, comp in self.components.items():
            for cell, nid in comp.cells.items():
                rec = self.nodes[nid]
                if rec.component_id != cid:
                    raise SimulationError(f"node {nid} component map stale")
                if rec.pos != cell:
                    raise SimulationError(f"node {nid} cell map stale")
                if nid in seen_nodes:
                    raise SimulationError(f"node {nid} in two components")
                seen_nodes.add(nid)
            if len(set(comp.cells)) != len(comp.cells):
                raise SimulationError(f"component {cid} has overlapping cells")
            for bond in comp.bonds:
                (a, pa), (b, pb) = tuple(bond)
                ra, rb = self.nodes[a], self.nodes[b]
                da = world_direction(pa, ra.orientation)
                if ra.pos + da != rb.pos:
                    raise SimulationError(f"bond {bond!r} not at unit distance")
                db = world_direction(pb, rb.orientation)
                if rb.pos + db != ra.pos:
                    raise SimulationError(f"bond {bond!r} ports not facing")
            if comp.size() > 1:
                adjacency: Dict[int, List[int]] = {
                    nid: [] for nid in comp.cells.values()
                }
                for bond in comp.bonds:
                    (a, _), (b, _) = tuple(bond)
                    adjacency[a].append(b)
                    adjacency[b].append(a)
                start = next(iter(adjacency))
                seen = {start}
                stack = [start]
                while stack:
                    v = stack.pop()
                    for w in adjacency[v]:
                        if w not in seen:
                            seen.add(w)
                            stack.append(w)
                if len(seen) != comp.size():
                    raise SimulationError(
                        f"component {cid} bond graph is disconnected"
                    )
        if len(seen_nodes) != len(self.nodes):
            raise SimulationError("orphan nodes outside any component")


def _positive_units(dimension: int) -> Tuple[Vec, ...]:
    if dimension == 2:
        return (Vec(1, 0, 0), Vec(0, 1, 0))
    return (Vec(1, 0, 0), Vec(0, 1, 0), Vec(0, 0, 1))


def _unit_deltas(dimension: int) -> Tuple[Vec, ...]:
    units = _positive_units(dimension)
    return units + tuple(-u for u in units)
