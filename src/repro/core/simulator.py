"""The simulation loop: executions, stabilization, termination (§3).

A :class:`Simulation` binds a :class:`~repro.core.world.World`, a
:class:`~repro.core.protocol.Protocol` and a scheduler, and advances the
execution one effective interaction at a time. It detects *stabilization*
(no effective interaction is permissible anymore) and supports arbitrary
stop predicates, e.g. "some node reached a halting state" for terminating
protocols.

Stabilization is signalled by the scheduler contract
(``Scheduler.next_event`` returns ``None``; see ``repro.core.scheduler``):
a configuration with no effective interaction — including degenerate
single-node worlds with no permissible interaction at all — ends the run
with ``stabilized=True`` rather than raising. World mutations performed
*between* steps (fault injection, synchronous rounds, constructor surgery)
are picked up automatically by incremental schedulers through the world's
change journal, the unified world-delta log (merges, splits, surgery
excisions, hybrid moves — consumed as fine-grained deltas), and the
component version counters (the coarse backstop); no explicit cache
invalidation call exists or is needed.

This module is the execution engine underneath the declarative experiment
layer: ``repro.experiments`` wraps seeded :class:`Simulation` runs (and the
scenario-specific pipelines built on them) into registered scenarios with a
uniform result schema, and :class:`RunResult.reason` — a :class:`StopReason`
— is reused verbatim by ``repro.experiments.result.ExperimentResult``.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import TerminationError
from repro.core.protocol import Protocol, Update
from repro.core.scheduler import HotScheduler, ScheduledEvent, Scheduler
from repro.core.world import Candidate, World

#: A trace hook: called after each applied event.
TraceHook = Callable[[int, Candidate, Update, World], None]

#: Construction observers: called with every newly-built :class:`Simulation`.
#: This is the seam the streaming trace recorder (``repro.trace.record``)
#: attaches through — the core stays free of trace imports, and the list is
#: empty (zero per-step cost, bit-identical trajectories) unless a recording
#: context is active.
_SIM_OBSERVERS: List[Callable[["Simulation"], None]] = []


def add_simulation_observer(observer: Callable[["Simulation"], None]) -> None:
    """Register a callback invoked with each subsequently-built Simulation."""
    _SIM_OBSERVERS.append(observer)


def remove_simulation_observer(observer: Callable[["Simulation"], None]) -> None:
    """Unregister a construction observer (no error if already removed)."""
    try:
        _SIM_OBSERVERS.remove(observer)
    except ValueError:
        pass


def notify_simulation_observers(sim) -> None:
    """Offer a freshly-constructed simulation to every observer.

    Called from ``Simulation.__post_init__`` and from duck-typed drivers
    (``repro.hybrid.movement.HybridSimulation``) that expose the same
    ``world`` / ``seed`` / ``trace`` surface a recording attaches to.
    """
    for observe in tuple(_SIM_OBSERVERS):
        observe(sim)


class StopReason(str, enum.Enum):
    """Why a run ended — the one normalized vocabulary for every runner.

    A ``str`` subclass so historical comparisons against the literal
    strings (``result.reason == "budget"``) keep working; new code should
    compare against the enum members. Reused by
    ``repro.experiments.result.ExperimentResult``.
    """

    STABILIZED = "stabilized"  #: no effective interaction is permissible
    PREDICATE = "predicate"    #: the ``until`` stop predicate fired
    BUDGET = "budget"          #: the event budget ran out first

    def __str__(self) -> str:  # json/format friendliness: the bare value
        return self.value


@dataclass
class RunResult:
    """Outcome of a :meth:`Simulation.run` call."""

    events: int
    raw_steps: Optional[int]
    stabilized: bool
    stopped: bool
    reason: StopReason

    def __bool__(self) -> bool:  # truthy when the run ended on its own terms
        return self.stabilized or self.stopped


@dataclass
class Simulation:
    """Drives a protocol over a world under a scheduler.

    Parameters
    ----------
    world, protocol:
        The configuration and the common program of the nodes.
    scheduler:
        Defaults to the :class:`HotScheduler` (exact trajectory law,
        effective-event counting).
    rng / seed:
        Randomness source; pass ``seed`` for reproducible executions.
    check_invariants:
        When true, the world's structural invariants are verified after
        every applied event (slow; meant for tests).
    """

    world: World
    protocol: Protocol
    scheduler: Scheduler = field(default_factory=HotScheduler)
    rng: Optional[random.Random] = None
    seed: Optional[int] = None
    check_invariants: bool = False
    trace: Optional[TraceHook] = None

    events: int = 0
    raw_steps: int = 0
    stabilized: bool = False

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = random.Random(self.seed)
        # Bind the world to the protocol's compiled program: the world
        # adopts its canonical state space, so dispatch in the scheduler
        # fast path compares interned ids with no translation. Idempotent;
        # worlds built via ``World.of_free_nodes`` are already bound.
        program = self.protocol.program
        if program is not None:
            self.world.adopt_space(program.space)
        notify_simulation_observers(self)

    # ------------------------------------------------------------------

    def step(self) -> Optional[ScheduledEvent]:
        """Apply one effective interaction; ``None`` once stabilized."""
        if self.stabilized:
            return None
        assert self.rng is not None
        event = self.scheduler.next_event(self.world, self.protocol, self.rng)
        if event is None:
            self.stabilized = True
            return None
        self.world.apply(event.candidate, event.update)
        self.events += 1
        if event.raw_steps is not None:
            self.raw_steps += event.raw_steps
        if self.check_invariants:
            self.world.check_invariants()
        if self.trace is not None:
            self.trace(self.events, event.candidate, event.update, self.world)
        return event

    def run(
        self,
        max_events: int = 1_000_000,
        until: Optional[Callable[[World], bool]] = None,
        require_stop: bool = False,
    ) -> RunResult:
        """Advance until stabilization, the predicate, or the event budget.

        ``until`` is evaluated before the first event and after each event.
        With ``require_stop`` the run raises :class:`TerminationError` when
        the budget is exhausted first — use it when a theorem guarantees
        termination and silent truncation would mask a bug.
        """
        def result(stopped: bool, reason: StopReason) -> RunResult:
            raw = self.raw_steps if self.scheduler.tracks_raw_steps else None
            return RunResult(self.events, raw, self.stabilized, stopped, reason)

        if until is not None and until(self.world):
            return result(True, StopReason.PREDICATE)
        for _ in range(max_events):
            event = self.step()
            if event is None:
                return result(False, StopReason.STABILIZED)
            if until is not None and until(self.world):
                return result(True, StopReason.PREDICATE)
        if require_stop:
            raise TerminationError(
                f"run exceeded {max_events} events without stopping"
            )
        return result(False, StopReason.BUDGET)

    def run_to_stabilization(self, max_events: int = 1_000_000) -> RunResult:
        """Run until no effective interaction remains (stable output, §3)."""
        res = self.run(max_events=max_events)
        if not res.stabilized:
            raise TerminationError(
                f"did not stabilize within {max_events} events"
            )
        return res

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------

    @property
    def evaluations(self) -> Optional[int]:
        """Protocol-delta evaluations the scheduler performed so far.

        The dominant cost of candidate discovery (see
        ``benchmarks/bench_schedulers.py``); ``None`` for third-party
        schedulers that do not track it.
        """
        return getattr(self.scheduler, "evaluations", None)

    def any_halted(self) -> bool:
        """True iff some node is in a halting state."""
        decode = self.world.space.states
        return any(
            self.protocol.is_halted(decode[rec.sid])
            for rec in self.world.nodes.values()
        )

    def states_by_count(self) -> List[Tuple[object, int]]:
        """State multiset of the population, most frequent first."""
        decode = self.world.space.states
        counts: dict = {}
        for rec in self.world.nodes.values():
            state = decode[rec.sid]
            counts[state] = counts.get(state, 0) + 1
        return sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
