"""The shared effective-candidate layer behind every scheduler.

All schedulers of ``repro.core.scheduler`` select among the *effective*
permissible interactions of the current configuration. This module owns
that set, in three interchangeable forms that provably produce the same
canonically ordered list:

* :func:`reference_effective_candidates` — filter the world's full
  permissible enumeration (the §3 reference; also yields ``|Perm|``, needed
  for exact raw-step accounting).
* :func:`hot_effective_candidates` — brute-force enumeration restricted to
  *hot* nodes (states that can appear in effective interactions). Same
  result, skips provably ineffective pairs.
* :class:`EffectiveCandidateCache` — incremental maintenance of the hot
  enumeration. After each event only the *dirty neighborhood* is
  re-examined: nodes whose state changed (tracked by the
  :class:`~repro.core.world.World` change journal) and nodes of components
  whose ``Component.version`` bumped (merges, splits, bond changes, moves,
  surgery). Entries between untouched components survive verbatim.

Canonical form
--------------

A physical interaction can be described from either endpoint (with the
placement expressed in either component's frame). To make the three forms
comparable — and seeded runs identical across schedulers — every candidate
is produced in a *canonical orientation*:

* intra-component: the smaller node id is ``nid1``;
* inter-component: ``nid1`` belongs to the component with the smaller id
  (component ids are never reused, so this is stable between events).

and the final list is sorted by :func:`candidate_sort_key`, a total order
over full candidate identity **including rotation and translation** (two
inter-component candidates may differ only in alignment; dropping the
placement from the key made the round-robin adversary tie-break on hash
order, breaking cross-process determinism — the bug fixed by this module).

Correctness of the incremental form rests on locality: a candidate's
permissibility and effectiveness depend only on the states, ports, and
bond of its two endpoints and on the cell sets of their two components.
Any mutation of those — state writes, bond flips, merges, splits, moves,
surgery — either lands the endpoint in the change journal or bumps the
owning component's version, so the sweep in :meth:`refresh` invalidates
exactly the entries that may have changed. Property tests
(``tests/test_scheduler_equivalence.py``) drive random executions with
merges, splits, fault injection, and synchronous rounds and assert the
cache equals the reference after every event.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.protocol import Protocol, Update
from repro.core.world import Candidate, MergeRecord, World
from repro.geometry.packed import (
    orientation_port_deltas,
    pack_delta,
    packed_rotation,
)
from repro.geometry.ports import PORT_INDEX, PORTS_3D

#: Identity key of a candidate: endpoints, ports, and placement rotation.
#: (The translation and bond are determined by these plus the current
#: configuration, so the key is unique within one configuration.)
CandidateKey = Tuple[int, str, int, str, Optional[tuple]]

#: A cached entry: the candidate and its (effective) update.
Entry = Tuple[Candidate, Update]


def candidate_key(cand: Candidate) -> CandidateKey:
    """A hashable identity key for a canonical candidate."""
    return (
        cand.nid1,
        cand.port1.value,
        cand.nid2,
        cand.port2.value,
        None if cand.rotation is None else cand.rotation.matrix,
    )


def candidate_sort_key(cand: Candidate):
    """A deterministic total order over candidates.

    Includes the bond and the full placement (rotation matrix and
    translation): inter-component candidates may differ *only* in
    alignment, and the order of this list feeds RNG-indexed draws and the
    round-robin adversary's turn — it must be decided by value, never by
    set/hash iteration order.
    """
    return (
        cand.nid1,
        cand.port1.value,
        cand.nid2,
        cand.port2.value,
        cand.bond,
        () if cand.rotation is None else cand.rotation.matrix,
        () if cand.translation is None else cand.translation.as_tuple(),
    )


def canonicalize(world: World, cand: Candidate) -> Candidate:
    """Re-orient a candidate into the canonical form described above.

    Intra candidates are flipped by swapping endpoints (the bond is
    symmetric); inter candidates produced by the world's reference
    enumeration are already canonical (it enumerates component pairs in
    component-id order), so only the intra case needs work.
    """
    if cand.intra:
        if cand.nid1 > cand.nid2:
            return Candidate(
                cand.nid2, cand.port2, cand.nid1, cand.port1, cand.bond
            )
        return cand
    cid1 = world.nodes[cand.nid1].component_id
    cid2 = world.nodes[cand.nid2].component_id
    if cid1 > cid2:  # pragma: no cover - reference enumeration is canonical
        raise AssertionError(
            "inter candidate not in canonical component order; generate it "
            "from the lower-id component instead of flipping frames"
        )
    return cand


def iter_node_candidates(
    world: World, protocol: Protocol, nid: int
) -> Iterator[Candidate]:
    """Every *possibly effective* canonical candidate involving ``nid``.

    Prunes with the protocol's hot/pair/port hints (all over-approximate,
    so no effective candidate is missed); the caller evaluates the
    survivors. When the world is bound to an *exact* compiled program
    (``repro.core.program``), the hints are resolved on interned state ids
    — the per-state hot bitmask, the pair index, and the oriented port
    hints — and the per-``(state, port, bond)`` static-effectiveness index
    additionally discards candidates **no** rule can ever fire on before
    any geometry probe or dispatch happens. Candidates whose two endpoints
    are both enumerated (e.g. both dirty, or both hot) are yielded once
    per endpoint — deduplicate by :func:`candidate_key`.
    """
    program = protocol.program
    compiled = (
        program is not None and world.space is program.space and program.exact
    )
    nodes = world.nodes
    rec = nodes[nid]
    comp = world.components[rec.component_id]
    sid = rec.sid
    decode = world.space.states
    if compiled:
        hot_mask = program.hot_mask
        nid_hot = bool(hot_mask >> sid & 1)
    else:
        state = decode[sid]
        nid_hot = protocol.is_hot(state)
    # Intra-component: the (at most one per port) grid-adjacent pairs,
    # probed on the packed occupancy of the component's geometry snapshot.
    geom = world.geometry(comp)
    ppos = geom.pos_of[nid]
    deltas = orientation_port_deltas(rec.orientation)
    for i, port in enumerate(world.ports):
        other = geom.cells.get(ppos + deltas[i])
        if other is None:
            continue
        other_sid = nodes[other].sid
        if compiled:
            if not (nid_hot or hot_mask >> other_sid & 1):
                continue
            if not program.pair_can_fire(sid, other_sid):
                continue
        else:
            other_state = decode[other_sid]
            if not (nid_hot or protocol.is_hot(other_state)):
                continue
            if not protocol.pair_compatible(state, other_state):
                continue
        a, b = (nid, other) if nid < other else (other, nid)
        cand = world.intra_candidate(a, b)
        if cand is None:
            continue
        if compiled and not (
            program.can_fire(nodes[a].sid, PORT_INDEX[cand.port1], cand.bond)
            and program.can_fire(nodes[b].sid, PORT_INDEX[cand.port2], cand.bond)
        ):
            continue  # statically ineffective: no rule has these endpoints
        yield cand
    # Inter-component: nid against every node of another component whose
    # state passes the hints, oriented by component id.
    for partner_sid, members in world.by_sid.items():
        if compiled:
            if not (nid_hot or hot_mask >> partner_sid & 1):
                continue
            if not program.pair_can_fire(sid, partner_sid):
                continue
            hints = None
        else:
            partner_state = decode[partner_sid]
            if not (nid_hot or protocol.is_hot(partner_state)):
                continue
            if not protocol.pair_compatible(state, partner_state):
                continue
            hints = protocol.port_hints(state, partner_state)
        for other in members:
            if other == nid:
                continue
            other_rec = nodes[other]
            if other_rec.component_id == rec.component_id:
                continue
            first_is_nid = rec.component_id < other_rec.component_id
            first, second = (nid, other) if first_is_nid else (other, nid)
            if compiled:
                # Oriented bond-0 hints double as the static-effectiveness
                # filter: a port pair absent here cannot hit the table.
                s1, s2 = (sid, partner_sid) if first_is_nid else (partner_sid, sid)
                for p1i, p2i in program.oriented_hints(s1, s2):
                    yield from world.inter_candidates(
                        first, PORTS_3D[p1i], second, PORTS_3D[p2i]
                    )
                continue
            if hints is None:
                combos: Iterator[Tuple] = (
                    (p1, p2) for p1 in world.ports for p2 in world.ports
                )
            elif first_is_nid:
                combos = iter(hints)
            else:
                # Hints are oriented (port of nid, port of partner).
                combos = ((p2, p1) for p1, p2 in hints)
            for p1, p2 in combos:
                yield from world.inter_candidates(first, p1, second, p2)


def hot_effective_candidates(
    world: World,
    protocol: Protocol,
    evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
) -> List[Entry]:
    """Brute-force hot enumeration: the canonical effective list.

    Enumerates candidates involving each hot node, deduplicates by key,
    evaluates, and sorts. Equal to the effective subset of the reference
    enumeration because hotness over-approximates ("an interaction between
    two non-hot states is ineffective").
    """
    entries: Dict[CandidateKey, Entry] = {}
    seen: Set[CandidateKey] = set()
    is_hot = _hot_sid_check(world, protocol)
    for sid in world.by_sid:
        if not is_hot(sid):
            continue
        for nid in world.by_sid[sid]:
            for cand in iter_node_candidates(world, protocol, nid):
                key = candidate_key(cand)
                if key in seen:  # already evaluated from the other endpoint
                    continue
                seen.add(key)
                update = evaluate(protocol, world, cand)
                if update is not None:
                    entries[key] = (cand, update)
    out = list(entries.values())
    out.sort(key=lambda cu: candidate_sort_key(cu[0]))
    return out


def _hot_sid_check(world: World, protocol: Protocol) -> Callable[[int], bool]:
    """Hot-state predicate over interned ids: the compiled hot bitmask
    when the world is bound to an exact program, else the protocol's
    public hint decoded at the edge."""
    program = protocol.program
    if program is not None and world.space is program.space and program.exact:
        mask = program.hot_mask
        return lambda sid: bool(mask >> sid & 1)
    decode = world.space.states
    return lambda sid: protocol.is_hot(decode[sid])


def reference_effective_candidates(
    world: World,
    protocol: Protocol,
    evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
) -> Tuple[List[Entry], int]:
    """The canonical effective list via full enumeration, plus ``|Perm|``.

    The reference form: every permissible interaction is evaluated, so the
    exact schedulers can compute the effectiveness probability
    ``|Eff| / |Perm|`` for raw-step accounting.
    """
    effective: List[Entry] = []
    permissible = 0
    program = protocol.program
    compiled = (
        program is not None and world.space is program.space and program.exact
    )
    nodes = world.nodes
    for raw in world.enumerate_candidates():
        permissible += 1
        cand = canonicalize(world, raw)
        if compiled and not (
            program.can_fire(
                nodes[cand.nid1].sid, PORT_INDEX[cand.port1], cand.bond
            )
            and program.can_fire(
                nodes[cand.nid2].sid, PORT_INDEX[cand.port2], cand.bond
            )
        ):
            # Statically ineffective: still counted in |Perm| (the raw-step
            # law needs the full permissible count) but never dispatched.
            continue
        update = evaluate(protocol, world, cand)
        if update is not None:
            effective.append((cand, update))
    effective.sort(key=lambda cu: candidate_sort_key(cu[0]))
    return effective, permissible


class EffectiveCandidateCache:
    """Incrementally maintained canonical effective-candidate list.

    Bound lazily to one (world, protocol) pair; :meth:`refresh` returns the
    current sorted list, re-examining only the dirty neighborhood since the
    previous call:

    * nodes recorded in the world's change journal (state writes, the two
      endpoints of every applied interaction);
    * component *merges*, consumed from the world's merge journal: only the
      nodes that physically moved into the kept frame are re-examined, while
      the kept component's surviving entries are *pruned* — an entry is
      dropped iff its cached placement now collides with a newly occupied
      cell (checked on the packed representation), since occupancy growth
      can invalidate but never create permissible placements and surviving
      intra/inter entries keep their exact rotation, translation and update;
    * all nodes of components whose ``version`` counter moved otherwise
      (splits, bond flips, leaf rotations, surgery) or that appeared or
      vanished outside a journalled merge.

    If a journal was truncated under the cache (an unboundedly long gap
    between refreshes) or the binding changed, the cache falls back to a
    full rebuild / coarse sweep — never to a stale answer.
    """

    def __init__(self) -> None:
        self._world: Optional[World] = None
        self._protocol: Optional[Protocol] = None
        self._cursor = 0
        self._merge_cursor = 0
        self._comp_versions: Dict[int, int] = {}
        self._comp_members: Dict[int, Tuple[int, ...]] = {}
        #: key -> (sort key, entry): the sort key is computed once per
        #: insertion instead of once per entry per refresh-sort.
        self._entries: Dict[CandidateKey, Tuple[tuple, Entry]] = {}
        self._by_node: Dict[int, Set[CandidateKey]] = {}
        self._sorted: Optional[List[Entry]] = None
        #: Protocol-delta evaluations performed (the scheduler cost metric
        #: reported by ``benchmarks/bench_schedulers.py``).
        self.evaluations = 0
        self.full_rebuilds = 0
        self.refreshed_nodes = 0
        #: Merges handled by delta pruning (vs. coarse version sweeps).
        self.merge_prunes = 0

    # ------------------------------------------------------------------

    def refresh(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
    ) -> List[Entry]:
        """The canonical sorted effective list for the current configuration."""
        if world is not self._world or protocol is not self._protocol:
            self._rebuild(world, protocol, evaluate)
            assert self._sorted is not None
            return self._sorted
        dirty = world.changes_since(self._cursor)
        if dirty is None:  # journal truncated under us
            self._rebuild(world, protocol, evaluate)
            assert self._sorted is not None
            return self._sorted
        self._cursor = world.change_cursor()
        merges = world.merges_since(self._merge_cursor)
        self._merge_cursor = world.merge_cursor()
        if merges:
            for record in merges:
                self._apply_merge_delta(world, record, dirty)
        # Merges with an up-to-date version trail were consumed above; any
        # remaining version movement (splits, moves, surgery, unmatched
        # merges, a truncated merge journal) is swept coarsely.
        self._sweep_component_versions(world, dirty)
        if dirty:
            self._invalidate(dirty)
            seen: Set[CandidateKey] = set()
            for nid in sorted(dirty):
                if nid in world.nodes:
                    self._generate_for_node(world, protocol, evaluate, nid, seen)
            self._sorted = None
        if self._sorted is None:
            self._sorted = [
                entry
                for _key, entry in sorted(
                    self._entries.values(), key=itemgetter(0)
                )
            ]
        return self._sorted

    # ------------------------------------------------------------------

    def _rebuild(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
    ) -> None:
        self._world = world
        self._protocol = protocol
        self._cursor = world.change_cursor()
        self._merge_cursor = world.merge_cursor()
        self._entries.clear()
        self._by_node.clear()
        self._comp_versions = {
            cid: comp.version for cid, comp in world.components.items()
        }
        self._comp_members = {
            cid: tuple(comp.cells.values())
            for cid, comp in world.components.items()
        }
        self.full_rebuilds += 1
        seen: Set[CandidateKey] = set()
        is_hot = _hot_sid_check(world, protocol)
        for sid in world.by_sid:
            if not is_hot(sid):
                continue
            for nid in world.by_sid[sid]:
                self._generate_for_node(world, protocol, evaluate, nid, seen)
        self._sorted = [
            entry
            for _key, entry in sorted(self._entries.values(), key=itemgetter(0))
        ]

    def _sweep_component_versions(self, world: World, dirty: Set[int]) -> None:
        """Fold component-version movement into the dirty node set."""
        seen = set()
        for cid, comp in world.components.items():
            seen.add(cid)
            version = comp.version
            if self._comp_versions.get(cid) == version:
                continue
            # New component or bumped version: its previous and current
            # members all carry potentially stale geometry.
            dirty.update(self._comp_members.get(cid, ()))
            members = tuple(comp.cells.values())
            dirty.update(members)
            self._comp_versions[cid] = version
            self._comp_members[cid] = members
        for cid in list(self._comp_versions):
            if cid not in seen:  # vanished (merged away)
                dirty.update(self._comp_members.pop(cid, ()))
                del self._comp_versions[cid]

    def _invalidate(self, dirty: Set[int]) -> None:
        for nid in dirty:
            keys = self._by_node.pop(nid, None)
            if not keys:
                continue
            for key in keys:
                if self._entries.pop(key, None) is None:
                    continue
                other = key[2] if key[0] == nid else key[0]
                peer = self._by_node.get(other)
                if peer is not None:
                    peer.discard(key)

    def _drop_entry(self, key: CandidateKey) -> None:
        """Remove one entry and unindex it from both endpoints."""
        if self._entries.pop(key, None) is None:
            return
        for nid in (key[0], key[2]):
            peers = self._by_node.get(nid)
            if peers is not None:
                peers.discard(key)

    def _apply_merge_delta(
        self, world: World, record: MergeRecord, dirty: Set[int]
    ) -> None:
        """Consume one journalled merge with delta pruning.

        Only applies when the cache's version trail matches the record
        exactly (kept component seen at ``version - 1``, absorbed component
        tracked); anything else — interleaved splits or surgery, components
        born since the last refresh, chained merges whose kept side has
        since vanished — is left to the coarse version sweep, which remains
        fully correct on its own.

        Under the fine path, the nodes that moved into the kept frame are
        dirtied (their placements and seam adjacencies changed), and the
        kept component's surviving inter entries are collision-probed
        against the newly occupied packed cells: occupancy growth can only
        *remove* permissible placements, so dropping exactly the colliding
        entries keeps the cache equal to the reference.
        """
        kept, version, absorbed, new_cells, moved = record
        if self._comp_versions.get(kept) != version - 1:
            return
        if absorbed not in self._comp_versions:
            return
        comp = world.components.get(kept)
        if comp is None:
            return
        survivors = self._comp_members.get(kept, ())
        # The absorbed component is consumed here: its members (== moved,
        # when the trail is clean) regenerate from their new geometry.
        dirty.update(self._comp_members.pop(absorbed, ()))
        del self._comp_versions[absorbed]
        dirty.update(moved)
        moved_set = set(moved)
        nodes = world.nodes
        components = world.components
        for nid in survivors:
            if nid in dirty:
                continue  # already slated for full regeneration
            keys = self._by_node.get(nid)
            if not keys:
                continue
            for key in [k for k in keys if k[4] is not None]:
                item = self._entries.get(key)
                if item is None:
                    continue
                cand = item[1][0]
                other = cand.nid2 if cand.nid1 == nid else cand.nid1
                if other in moved_set or other in dirty:
                    continue  # invalidated/regenerated via the dirty set
                other_cid = nodes[other].component_id
                other_comp = components.get(other_cid)
                if (
                    other_comp is None
                    or self._comp_versions.get(other_cid) != other_comp.version
                ):
                    # The partner component changed in the same gap (e.g.
                    # both endpoints' components merged): neither record
                    # alone can delta-probe this entry, since each side's
                    # new cells must be checked against the *other side's
                    # full placement*. Re-examine the survivor wholesale.
                    dirty.add(nid)
                    break
                g_other = world.geometry(other_comp)
                trans = pack_delta(cand.translation)
                if cand.nid1 == nid:
                    # Kept component has the smaller cid: the partner is
                    # placed into the kept frame — collide its placed cells
                    # with the newly occupied ones.
                    collides = any(
                        (cell + trans) in new_cells
                        for cell in g_other.rotated(cand.rotation)
                    )
                else:
                    # Partner frame hosts the placement: map the new cells
                    # into it and probe the partner's occupancy.
                    rotate = packed_rotation(cand.rotation)
                    occ = g_other.occ
                    collides = any(
                        (rotate(cell) + trans) in occ for cell in new_cells
                    )
                if collides:
                    self._drop_entry(key)
                    self._sorted = None
        self._comp_versions[kept] = version
        self._comp_members[kept] = tuple(survivors) + tuple(moved)
        self.merge_prunes += 1

    def _generate_for_node(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        nid: int,
        seen: Set[CandidateKey],
    ) -> None:
        """Regenerate entries for one node; ``seen`` spans one refresh so
        a candidate whose endpoints are both being regenerated (or an
        ineffective one) is evaluated once, not once per endpoint."""
        self.refreshed_nodes += 1
        for cand in iter_node_candidates(world, protocol, nid):
            key = candidate_key(cand)
            if key in seen:
                continue  # regenerated from the partner this refresh
            seen.add(key)
            self.evaluations += 1
            update = evaluate(protocol, world, cand)
            if update is None:
                continue
            self._entries[key] = (candidate_sort_key(cand), (cand, update))
            self._by_node.setdefault(cand.nid1, set()).add(key)
            self._by_node.setdefault(cand.nid2, set()).add(key)
