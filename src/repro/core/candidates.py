"""The shared effective-candidate layer behind every scheduler.

All schedulers of ``repro.core.scheduler`` select among the *effective*
permissible interactions of the current configuration. This module owns
that set, in three interchangeable forms that provably produce the same
canonically ordered list:

* :func:`reference_effective_candidates` — filter the world's full
  permissible enumeration (the §3 reference; also yields ``|Perm|``, needed
  for exact raw-step accounting).
* :func:`hot_effective_candidates` — brute-force enumeration restricted to
  *hot* nodes (states that can appear in effective interactions). Same
  result, skips provably ineffective pairs.
* :class:`EffectiveCandidateCache` — incremental maintenance of the hot
  enumeration. After each event only the *dirty neighborhood* is
  re-examined: nodes whose state changed (tracked by the
  :class:`~repro.core.world.World` change journal) plus the precise
  fallout of each record in the world-delta journal — merges, splits,
  surgery excisions and hybrid leaf moves all carry enough information
  (moved nodes, vacated/occupied cells, the cut frontier) to prune and
  re-seed only what the mutation can actually touch. Entries between
  untouched components survive verbatim; unexplained ``Component.version``
  movement still falls back to a coarse per-component sweep.

Occupancy duality
-----------------

Delta pruning rests on one geometric fact with two faces. Under the §3
permissibility predicate, a cached placement depends on the two components'
cell sets only through collision probes, so:

* occupancy **growth** (merges, transplants, the occupied half of a move)
  can *invalidate* surviving placements but never create new ones — the
  cache drops exactly the entries whose cached placement collides with a
  newly occupied cell (:meth:`EffectiveCandidateCache._prune_survivors`);
* occupancy **shrinkage** (splits, excisions, the vacated half of a move)
  can *create* placements but never invalidate survivors — the cache keeps
  every surviving entry verbatim and discovers the newly permitted ones
  from the vacated cells: candidates anchored next to a vacated cell come
  from re-examining the journalled cut frontier, and placements that were
  blocked *only* by departed cells are re-seeded by sliding each multi-cell
  partner's footprint over the vacated cells
  (:meth:`EffectiveCandidateCache._reseed_vacated`).

Surviving intra/inter entries keep their exact rotation, translation and
update in both directions; component ids are never reused, so the
canonical orientation of a surviving entry is stable across any number of
splits and merges.

Canonical form
--------------

A physical interaction can be described from either endpoint (with the
placement expressed in either component's frame). To make the three forms
comparable — and seeded runs identical across schedulers — every candidate
is produced in a *canonical orientation*:

* intra-component: the smaller node id is ``nid1``;
* inter-component: ``nid1`` belongs to the component with the smaller id
  (component ids are never reused, so this is stable between events).

and the final list is sorted by :func:`candidate_sort_key`, a total order
over full candidate identity **including rotation and translation** (two
inter-component candidates may differ only in alignment; dropping the
placement from the key made the round-robin adversary tie-break on hash
order, breaking cross-process determinism — the bug fixed by this module).

Correctness of the incremental form rests on locality: a candidate's
permissibility and effectiveness depend only on the states, ports, and
bond of its two endpoints and on the cell sets of their two components.
Any mutation of those — state writes, bond flips, merges, splits, moves,
surgery — either lands the endpoint in the change journal, is described
exactly by a world-delta record, or bumps the owning component's version
(the coarse backstop), so :meth:`refresh` invalidates exactly the entries
that may have changed. Property tests
(``tests/test_scheduler_equivalence.py`` and the randomized
world-mutation stress harness in ``tests/test_world_deltas.py``) drive
random executions with merges, splits, fault injection, surgery, and
synchronous rounds and assert the cache equals the reference after every
mutation.
"""

from __future__ import annotations

from operator import itemgetter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.protocol import Protocol, Update
from repro.core.world import (
    Candidate,
    MergeRecord,
    MoveRecord,
    SplitRecord,
    World,
)
from repro.geometry.packed import (
    orientation_port_deltas,
    pack_delta,
    packed_rotation,
    unpack_delta,
)
from repro.geometry.ports import PORT_INDEX, PORTS_3D
from repro.geometry.rotation import rotations_for_dimension

#: Identity key of a candidate: endpoints, ports, and placement rotation.
#: (The translation and bond are determined by these plus the current
#: configuration, so the key is unique within one configuration.)
CandidateKey = Tuple[int, str, int, str, Optional[tuple]]

#: A cached entry: the candidate and its (effective) update.
Entry = Tuple[Candidate, Update]


def candidate_key(cand: Candidate) -> CandidateKey:
    """A hashable identity key for a canonical candidate."""
    return (
        cand.nid1,
        cand.port1.value,
        cand.nid2,
        cand.port2.value,
        None if cand.rotation is None else cand.rotation.matrix,
    )


def candidate_sort_key(cand: Candidate):
    """A deterministic total order over candidates.

    Includes the bond and the full placement (rotation matrix and
    translation): inter-component candidates may differ *only* in
    alignment, and the order of this list feeds RNG-indexed draws and the
    round-robin adversary's turn — it must be decided by value, never by
    set/hash iteration order.
    """
    return (
        cand.nid1,
        cand.port1.value,
        cand.nid2,
        cand.port2.value,
        cand.bond,
        () if cand.rotation is None else cand.rotation.matrix,
        () if cand.translation is None else cand.translation.as_tuple(),
    )


def canonicalize(world: World, cand: Candidate) -> Candidate:
    """Re-orient a candidate into the canonical form described above.

    Intra candidates are flipped by swapping endpoints (the bond is
    symmetric); inter candidates produced by the world's reference
    enumeration are already canonical (it enumerates component pairs in
    component-id order), so only the intra case needs work.
    """
    if cand.intra:
        if cand.nid1 > cand.nid2:
            return Candidate(
                cand.nid2, cand.port2, cand.nid1, cand.port1, cand.bond
            )
        return cand
    cid1 = world.nodes[cand.nid1].component_id
    cid2 = world.nodes[cand.nid2].component_id
    if cid1 > cid2:  # pragma: no cover - reference enumeration is canonical
        raise AssertionError(
            "inter candidate not in canonical component order; generate it "
            "from the lower-id component instead of flipping frames"
        )
    return cand


def iter_node_candidates(
    world: World, protocol: Protocol, nid: int
) -> Iterator[Candidate]:
    """Every *possibly effective* canonical candidate involving ``nid``.

    Prunes with the protocol's hot/pair/port hints (all over-approximate,
    so no effective candidate is missed); the caller evaluates the
    survivors. When the world is bound to an *exact* compiled program
    (``repro.core.program``), the hints are resolved on interned state ids
    — the per-state hot bitmask, the pair index, and the oriented port
    hints — and the per-``(state, port, bond)`` static-effectiveness index
    additionally discards candidates **no** rule can ever fire on before
    any geometry probe or dispatch happens. Candidates whose two endpoints
    are both enumerated (e.g. both dirty, or both hot) are yielded once
    per endpoint — deduplicate by :func:`candidate_key`.
    """
    program = protocol.program
    compiled = (
        program is not None and world.space is program.space and program.exact
    )
    nodes = world.nodes
    rec = nodes[nid]
    comp = world.components[rec.component_id]
    sid = rec.sid
    decode = world.space.states
    if compiled:
        hot_mask = program.hot_mask
        nid_hot = bool(hot_mask >> sid & 1)
    else:
        state = decode[sid]
        nid_hot = protocol.is_hot(state)
    # Intra-component: the (at most one per port) grid-adjacent pairs,
    # probed on the packed occupancy of the component's geometry snapshot.
    geom = world.geometry(comp)
    ppos = geom.pos_of[nid]
    deltas = orientation_port_deltas(rec.orientation)
    for i, port in enumerate(world.ports):
        other = geom.cells.get(ppos + deltas[i])
        if other is None:
            continue
        other_sid = nodes[other].sid
        if compiled:
            if not (nid_hot or hot_mask >> other_sid & 1):
                continue
            if not program.pair_can_fire(sid, other_sid):
                continue
        else:
            other_state = decode[other_sid]
            if not (nid_hot or protocol.is_hot(other_state)):
                continue
            if not protocol.pair_compatible(state, other_state):
                continue
        a, b = (nid, other) if nid < other else (other, nid)
        cand = world.intra_candidate(a, b)
        if cand is None:
            continue
        if compiled and not (
            program.can_fire(nodes[a].sid, PORT_INDEX[cand.port1], cand.bond)
            and program.can_fire(nodes[b].sid, PORT_INDEX[cand.port2], cand.bond)
        ):
            continue  # statically ineffective: no rule has these endpoints
        yield cand
    # Inter-component: nid against every node of another component whose
    # state passes the hints, oriented by component id.
    for partner_sid, members in world.by_sid.items():
        if compiled:
            if not (nid_hot or hot_mask >> partner_sid & 1):
                continue
            if not program.pair_can_fire(sid, partner_sid):
                continue
            hints = None
        else:
            partner_state = decode[partner_sid]
            if not (nid_hot or protocol.is_hot(partner_state)):
                continue
            if not protocol.pair_compatible(state, partner_state):
                continue
            hints = protocol.port_hints(state, partner_state)
        for other in members:
            if other == nid:
                continue
            other_rec = nodes[other]
            if other_rec.component_id == rec.component_id:
                continue
            first_is_nid = rec.component_id < other_rec.component_id
            first, second = (nid, other) if first_is_nid else (other, nid)
            if compiled:
                # Oriented bond-0 hints double as the static-effectiveness
                # filter: a port pair absent here cannot hit the table.
                s1, s2 = (sid, partner_sid) if first_is_nid else (partner_sid, sid)
                for p1i, p2i in program.oriented_hints(s1, s2):
                    yield from world.inter_candidates(
                        first, PORTS_3D[p1i], second, PORTS_3D[p2i]
                    )
                continue
            if hints is None:
                combos: Iterator[Tuple] = (
                    (p1, p2) for p1 in world.ports for p2 in world.ports
                )
            elif first_is_nid:
                combos = iter(hints)
            else:
                # Hints are oriented (port of nid, port of partner).
                combos = ((p2, p1) for p1, p2 in hints)
            for p1, p2 in combos:
                yield from world.inter_candidates(first, p1, second, p2)


def hot_effective_candidates(
    world: World,
    protocol: Protocol,
    evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
) -> List[Entry]:
    """Brute-force hot enumeration: the canonical effective list.

    Enumerates candidates involving each hot node, deduplicates by key,
    evaluates, and sorts. Equal to the effective subset of the reference
    enumeration because hotness over-approximates ("an interaction between
    two non-hot states is ineffective").
    """
    entries: Dict[CandidateKey, Entry] = {}
    seen: Set[CandidateKey] = set()
    is_hot = _hot_sid_check(world, protocol)
    for sid in world.by_sid:
        if not is_hot(sid):
            continue
        for nid in world.by_sid[sid]:
            for cand in iter_node_candidates(world, protocol, nid):
                key = candidate_key(cand)
                if key in seen:  # already evaluated from the other endpoint
                    continue
                seen.add(key)
                update = evaluate(protocol, world, cand)
                if update is not None:
                    entries[key] = (cand, update)
    out = list(entries.values())
    out.sort(key=lambda cu: candidate_sort_key(cu[0]))
    return out


def _hot_sid_check(world: World, protocol: Protocol) -> Callable[[int], bool]:
    """Hot-state predicate over interned ids: the compiled hot bitmask
    when the world is bound to an exact program, else the protocol's
    public hint decoded at the edge."""
    program = protocol.program
    if program is not None and world.space is program.space and program.exact:
        mask = program.hot_mask
        return lambda sid: bool(mask >> sid & 1)
    decode = world.space.states
    return lambda sid: protocol.is_hot(decode[sid])


def reference_effective_candidates(
    world: World,
    protocol: Protocol,
    evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
) -> Tuple[List[Entry], int]:
    """The canonical effective list via full enumeration, plus ``|Perm|``.

    The reference form: every permissible interaction is evaluated, so the
    exact schedulers can compute the effectiveness probability
    ``|Eff| / |Perm|`` for raw-step accounting.
    """
    effective: List[Entry] = []
    permissible = 0
    program = protocol.program
    compiled = (
        program is not None and world.space is program.space and program.exact
    )
    nodes = world.nodes
    for raw in world.enumerate_candidates():
        permissible += 1
        cand = canonicalize(world, raw)
        if compiled and not (
            program.can_fire(
                nodes[cand.nid1].sid, PORT_INDEX[cand.port1], cand.bond
            )
            and program.can_fire(
                nodes[cand.nid2].sid, PORT_INDEX[cand.port2], cand.bond
            )
        ):
            # Statically ineffective: still counted in |Perm| (the raw-step
            # law needs the full permissible count) but never dispatched.
            continue
        update = evaluate(protocol, world, cand)
        if update is not None:
            effective.append((cand, update))
    effective.sort(key=lambda cu: candidate_sort_key(cu[0]))
    return effective, permissible


class EffectiveCandidateCache:
    """Incrementally maintained canonical effective-candidate list.

    Bound lazily to one (world, protocol) pair; :meth:`refresh` returns the
    current sorted list, re-examining only the dirty neighborhood since the
    previous call:

    * nodes recorded in the world's change journal (state writes, the two
      endpoints of every applied interaction);
    * component *merges*, consumed from the world-delta journal: only the
      nodes that physically moved into the kept frame are re-examined, while
      the kept component's surviving entries are *pruned* — an entry is
      dropped iff its cached placement now collides with a newly occupied
      cell (checked on the packed representation), since occupancy growth
      can invalidate but never create permissible placements;
    * component *splits* (bond removals, surgery excisions), the dual case:
      shrinkage can create placements but never invalidate survivors, so
      every surviving entry is kept verbatim, the departed fragment's nodes
      and the journalled cut frontier are re-examined, and placements that
      were blocked only by vacated cells are re-seeded against multi-cell
      partners (see the "occupancy duality" section of the module
      docstring);
    * intra-component *moves* (hybrid leaf rotations): the vacated half is
      treated as a split, the occupied half as a merge, and the swung
      node(s) re-examined;
    * all nodes of components whose ``version`` counter moved without a
      consumable delta record (external surgery that bypasses the journal,
      a broken version trail mid-gap) or that appeared or vanished outside
      a journalled delta — the coarse sweep, kept as the backstop.

    If a journal was truncated under the cache (an unboundedly long gap
    between refreshes) or the binding changed, the cache falls back to a
    full rebuild / coarse sweep — never to a stale answer.

    ``split_delta=False`` disables the fine path for split and move
    records (they fall through to the coarse version sweep, the pre-delta
    behavior) — kept selectable for benchmarking
    (``benchmarks/bench_splits.py``) and as a cross-check oracle.
    """

    def __init__(self, split_delta: bool = True) -> None:
        self._world: Optional[World] = None
        self._protocol: Optional[Protocol] = None
        self._cursor = 0
        self._delta_cursor = 0
        self.split_delta = split_delta
        self._comp_versions: Dict[int, int] = {}
        self._comp_members: Dict[int, Tuple[int, ...]] = {}
        #: key -> (sort key, entry): the sort key is computed once per
        #: insertion instead of once per entry per refresh-sort.
        self._entries: Dict[CandidateKey, Tuple[tuple, Entry]] = {}
        self._by_node: Dict[int, Set[CandidateKey]] = {}
        self._sorted: Optional[List[Entry]] = None
        #: Protocol-delta evaluations performed (the scheduler cost metric
        #: reported by ``benchmarks/bench_schedulers.py``).
        self.evaluations = 0
        self.full_rebuilds = 0
        self.refreshed_nodes = 0
        #: Merges handled by delta pruning (vs. coarse version sweeps).
        self.merge_prunes = 0
        #: Splits handled by delta pruning (vs. coarse version sweeps).
        self.split_prunes = 0
        #: Moves handled by delta pruning (vs. coarse version sweeps).
        self.move_prunes = 0

    # ------------------------------------------------------------------

    def refresh(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
    ) -> List[Entry]:
        """The canonical sorted effective list for the current configuration."""
        if world is not self._world or protocol is not self._protocol:
            self._rebuild(world, protocol, evaluate)
            assert self._sorted is not None
            return self._sorted
        dirty = world.changes_since(self._cursor)
        if dirty is None:  # journal truncated under us
            self._rebuild(world, protocol, evaluate)
            assert self._sorted is not None
            return self._sorted
        self._cursor = world.change_cursor()
        deltas = world.deltas_since(self._delta_cursor)
        self._delta_cursor = world.delta_cursor()
        if deltas:
            # Records replay in mutation order, so each component's version
            # trail can be followed bump by bump across a whole gap of
            # interleaved merges, splits, and moves.
            for kind, record in deltas:
                if kind == "merge":
                    self._apply_merge_delta(world, record, dirty)
                elif not self.split_delta:
                    continue
                elif kind == "split":
                    self._apply_split_delta(
                        world, protocol, evaluate, record, dirty
                    )
                elif kind == "move":
                    self._apply_move_delta(
                        world, protocol, evaluate, record, dirty
                    )
        # Deltas with an up-to-date version trail were consumed above; any
        # remaining version movement (unjournalled surgery, records whose
        # trail broke mid-gap, a truncated delta journal) is swept coarsely.
        self._sweep_component_versions(world, dirty)
        if dirty:
            self._invalidate(dirty)
            seen: Set[CandidateKey] = set()
            for nid in sorted(dirty):
                if nid in world.nodes:
                    self._generate_for_node(world, protocol, evaluate, nid, seen)
            self._sorted = None
        if self._sorted is None:
            self._sorted = [
                entry
                for _key, entry in sorted(
                    self._entries.values(), key=itemgetter(0)
                )
            ]
        return self._sorted

    # ------------------------------------------------------------------

    def _rebuild(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
    ) -> None:
        self._world = world
        self._protocol = protocol
        self._cursor = world.change_cursor()
        self._delta_cursor = world.delta_cursor()
        self._entries.clear()
        self._by_node.clear()
        self._comp_versions = {
            cid: comp.version for cid, comp in world.components.items()
        }
        self._comp_members = {
            cid: tuple(comp.cells.values())
            for cid, comp in world.components.items()
        }
        self.full_rebuilds += 1
        seen: Set[CandidateKey] = set()
        is_hot = _hot_sid_check(world, protocol)
        for sid in world.by_sid:
            if not is_hot(sid):
                continue
            for nid in world.by_sid[sid]:
                self._generate_for_node(world, protocol, evaluate, nid, seen)
        self._sorted = [
            entry
            for _key, entry in sorted(self._entries.values(), key=itemgetter(0))
        ]

    def _sweep_component_versions(self, world: World, dirty: Set[int]) -> None:
        """Fold component-version movement into the dirty node set."""
        seen = set()
        for cid, comp in world.components.items():
            seen.add(cid)
            version = comp.version
            if self._comp_versions.get(cid) == version:
                continue
            # New component or bumped version: its previous and current
            # members all carry potentially stale geometry.
            dirty.update(self._comp_members.get(cid, ()))
            members = tuple(comp.cells.values())
            dirty.update(members)
            self._comp_versions[cid] = version
            self._comp_members[cid] = members
        for cid in list(self._comp_versions):
            if cid not in seen:  # vanished (merged away)
                dirty.update(self._comp_members.pop(cid, ()))
                del self._comp_versions[cid]

    def _invalidate(self, dirty: Set[int]) -> None:
        for nid in dirty:
            keys = self._by_node.pop(nid, None)
            if not keys:
                continue
            for key in keys:
                if self._entries.pop(key, None) is None:
                    continue
                other = key[2] if key[0] == nid else key[0]
                peer = self._by_node.get(other)
                if peer is not None:
                    peer.discard(key)

    def _drop_entry(self, key: CandidateKey) -> None:
        """Remove one entry and unindex it from both endpoints."""
        if self._entries.pop(key, None) is None:
            return
        for nid in (key[0], key[2]):
            peers = self._by_node.get(nid)
            if peers is not None:
                peers.discard(key)

    def _apply_merge_delta(
        self, world: World, record: MergeRecord, dirty: Set[int]
    ) -> None:
        """Consume one journalled merge with delta pruning.

        Only applies when the cache's version trail matches the record
        exactly (kept component seen at ``version - 1``, absorbed component
        tracked); anything else — interleaved splits or surgery, components
        born since the last refresh, chained merges whose kept side has
        since vanished — is left to the coarse version sweep, which remains
        fully correct on its own.

        Under the fine path, the nodes that moved into the kept frame are
        dirtied (their placements and seam adjacencies changed), and the
        kept component's surviving inter entries are collision-probed
        against the newly occupied packed cells: occupancy growth can only
        *remove* permissible placements, so dropping exactly the colliding
        entries keeps the cache equal to the reference.
        """
        kept, version, absorbed, new_cells, moved = record
        if self._comp_versions.get(kept) != version - 1:
            return
        if absorbed not in self._comp_versions:
            return
        comp = world.components.get(kept)
        if comp is None:
            return
        survivors = self._comp_members.get(kept, ())
        # The absorbed component is consumed here: its members (== moved,
        # when the trail is clean) regenerate from their new geometry.
        dirty.update(self._comp_members.pop(absorbed, ()))
        del self._comp_versions[absorbed]
        dirty.update(moved)
        self._prune_survivors(world, survivors, new_cells, dirty)
        self._comp_versions[kept] = version
        self._comp_members[kept] = tuple(survivors) + tuple(moved)
        self.merge_prunes += 1

    def _prune_survivors(
        self,
        world: World,
        survivors: Tuple[int, ...],
        new_cells: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Drop surviving inter entries whose cached placement collides
        with newly occupied packed cells.

        The growth half of the occupancy duality: new occupancy can only
        *remove* permissible placements, so dropping exactly the colliding
        entries keeps the cache equal to the reference.
        """
        nodes = world.nodes
        components = world.components
        for nid in survivors:
            if nid in dirty:
                continue  # already slated for full regeneration
            keys = self._by_node.get(nid)
            if not keys:
                continue
            for key in [k for k in keys if k[4] is not None]:
                item = self._entries.get(key)
                if item is None:
                    continue
                cand = item[1][0]
                other = cand.nid2 if cand.nid1 == nid else cand.nid1
                if other in dirty:
                    continue  # invalidated/regenerated via the dirty set
                other_cid = nodes[other].component_id
                other_comp = components.get(other_cid)
                if (
                    other_comp is None
                    or self._comp_versions.get(other_cid) != other_comp.version
                ):
                    # The partner component changed in the same gap (e.g.
                    # both endpoints' components merged): neither record
                    # alone can delta-probe this entry, since each side's
                    # new cells must be checked against the *other side's
                    # full placement*. Re-examine the survivor wholesale.
                    dirty.add(nid)
                    break
                g_other = world.geometry(other_comp)
                trans = pack_delta(cand.translation)
                if cand.nid1 == nid:
                    # This side has the smaller cid: the partner is placed
                    # into this frame — collide its placed cells with the
                    # newly occupied ones.
                    collides = any(
                        (cell + trans) in new_cells
                        for cell in g_other.rotated(cand.rotation)
                    )
                else:
                    # Partner frame hosts the placement: map the new cells
                    # into it and probe the partner's occupancy.
                    rotate = packed_rotation(cand.rotation)
                    occ = g_other.occ
                    collides = any(
                        (rotate(cell) + trans) in occ for cell in new_cells
                    )
                if collides:
                    self._drop_entry(key)
                    self._sorted = None

    def _apply_split_delta(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        record: SplitRecord,
        dirty: Set[int],
    ) -> None:
        """Consume one journalled split (or surgery excision) finely.

        Only applies when the cache's version trail matches the record
        exactly (kept component seen at ``version - 1``); anything else is
        left to the coarse version sweep, which remains fully correct on
        its own.

        The shrinkage half of the occupancy duality: vacated cells can
        create placements but never invalidate survivors, so surviving
        entries are kept verbatim while

        * the departed fragments' nodes regenerate wholesale (their
          component ids changed, so old intra entries across the cut and
          stale-orientation inter entries all re-derive);
        * the journalled cut frontier regenerates (newly opened slots —
          covers every new candidate whose placement lands a node *on* a
          vacated target cell, which is all of them for singleton
          partners);
        * placements of multi-cell partners that were blocked only by
          departed cells are re-seeded from the vacated cells
          (:meth:`_reseed_vacated`).
        """
        kept, version, fragments, vacated, frontier = record
        if self._comp_versions.get(kept) != version - 1:
            return
        comp = world.components.get(kept)
        if comp is None:
            return
        if any(fcid in self._comp_versions for fcid, _v, _m in fragments):
            return  # cid reuse — cannot happen, but never mis-track
        departed: Set[int] = set()
        for fcid, fversion, members in fragments:
            dirty.update(members)
            departed.update(members)
            # Track fragments at their birth version: later records in the
            # same gap (a fragment merging or re-splitting) advance the
            # trail record by record.
            self._comp_versions[fcid] = fversion
            self._comp_members[fcid] = tuple(members)
        survivors = tuple(
            nid
            for nid in self._comp_members.get(kept, ())
            if nid not in departed
        )
        self._comp_versions[kept] = version
        self._comp_members[kept] = survivors
        dirty.update(frontier)
        self._reseed_vacated(
            world, protocol, evaluate, kept, comp, vacated, dirty
        )
        self.split_prunes += 1

    def _apply_move_delta(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        record: MoveRecord,
        dirty: Set[int],
    ) -> None:
        """Consume one journalled intra-component move (leaf rotation).

        A move is shrinkage at the vacated cell plus growth at the newly
        occupied one: survivors are pruned against the occupied cell
        (merge rule), new placements are re-seeded from the vacated cell
        (split rule), and the swung node(s) regenerate wholesale.
        """
        cid, version, dirtied, vacated, new_cells, frontier = record
        if self._comp_versions.get(cid) != version - 1:
            return
        comp = world.components.get(cid)
        if comp is None:
            return
        dirty.update(dirtied)
        dirty.update(frontier)
        self._prune_survivors(
            world, self._comp_members.get(cid, ()), new_cells, dirty
        )
        self._comp_versions[cid] = version
        self._reseed_vacated(
            world, protocol, evaluate, cid, comp, vacated, dirty
        )
        self.move_prunes += 1

    def _reseed_vacated(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        kept_cid: int,
        comp,
        vacated: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Discover inter candidates newly permitted by occupancy shrinkage.

        A placement that was impermissible before the shrinkage and is
        permissible after it must have had *all* its collisions on
        now-vacated cells — so every such placement lands a cell of one
        side on a vacated cell. Three partner classes:

        * singleton partners need no work here: their only landing cell is
          the target slot, so a new candidate's kept-side anchor is
          grid-adjacent to a vacated cell — a frontier node, already
          dirty;
        * multi-cell partners with a clean version trail are re-seeded by
          sliding their footprint over the vacated cells (both canonical
          orientations, depending on which side's frame hosts the
          placement) and verifying each seeded placement against the
          *current* occupancy;
        * partners whose trail is mid-flux in the same gap (pending
          records) are folded into the dirty set wholesale — their full
          regeneration covers every pair with the kept component.
        """
        if not vacated:
            return
        g_kept = world.geometry(comp)
        for tcid in sorted(self._comp_versions):
            if tcid == kept_cid:
                continue
            tcomp = world.components.get(tcid)
            if tcomp is None:
                continue  # merged away later in the gap: that record/sweep dirties it
            if self._comp_versions.get(tcid) != tcomp.version:
                dirty.update(self._comp_members.get(tcid, ()))
                dirty.update(tcomp.cells.values())
                continue
            if tcomp.size() < 2:
                continue  # covered by the frontier (see docstring)
            members = self._comp_members.get(tcid, ())
            if members and all(nid in dirty for nid in members):
                continue  # full regeneration already covers this pair
            g_t = world.geometry(tcomp)
            if kept_cid < tcid:
                self._reseed_as_host(
                    world, protocol, evaluate, g_kept, g_t, vacated, dirty
                )
            else:
                self._reseed_as_guest(
                    world, protocol, evaluate, g_t, g_kept, vacated, dirty
                )

    def _reseed_as_host(
        self,
        world: World,
        protocol: Protocol,
        evaluate,
        g_host,
        g_guest,
        vacated: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Re-seed placements of a multi-cell guest into the shrunk host.

        The host (the component that vacated cells) has the smaller cid,
        so candidates place the guest into the host's frame. Seeds land
        each rotated guest cell on each vacated host cell; surviving the
        collision probe against the current host occupancy makes the
        placement permissible, and each guest node-port facing an occupied
        host cell anchors one canonical candidate.
        """
        occ_host = g_host.occ
        ports = world.ports
        nodes = world.nodes
        seen_placements: Set[Tuple[tuple, int]] = set()
        for rot in rotations_for_dimension(world.dimension):
            rotated = g_guest.rotated(rot)
            guest_items = tuple(zip(g_guest.cells.values(), rotated))
            for v in vacated:
                for rcell in rotated:
                    trans = v - rcell
                    pkey = (rot.matrix, trans)
                    if pkey in seen_placements:
                        continue
                    seen_placements.add(pkey)
                    if any((c + trans) in occ_host for c in rotated):
                        continue  # still collides elsewhere
                    for nid2, rc2 in guest_items:
                        image = rc2 + trans
                        rec2 = nodes[nid2]
                        rdeltas = orientation_port_deltas(
                            rot.compose(rec2.orientation)
                        )
                        for i2, p2 in enumerate(ports):
                            pos1 = image + rdeltas[i2]
                            nid1 = g_host.cells.get(pos1)
                            if nid1 is None:
                                continue
                            self._insert_reseeded(
                                world,
                                protocol,
                                evaluate,
                                nid1,
                                image - pos1,
                                nid2,
                                p2,
                                rot,
                                trans,
                                dirty,
                            )

    def _reseed_as_guest(
        self,
        world: World,
        protocol: Protocol,
        evaluate,
        g_host,
        g_guest,
        vacated: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Re-seed placements of the shrunk component into a multi-cell host.

        The partner hosts (smaller cid), so candidates place the shrunk
        guest into the *host's* frame; ``vacated`` cells live in the guest
        frame. Seeds land each rotated vacated cell on each occupied host
        cell — exactly the previously-colliding placements — then probe
        the guest's current footprint against the host occupancy via
        inverse rotation (cheap when the host is small, regardless of the
        guest's size), and anchor candidates at the host's open slots.
        """
        occ_host = g_host.occ
        occ_guest = g_guest.occ
        nodes = world.nodes
        ports = world.ports
        seen_placements: Set[Tuple[tuple, int]] = set()
        for rot in rotations_for_dimension(world.dimension):
            apply_rot = packed_rotation(rot)
            inv = packed_rotation(rot.inverse())
            rotated_vacated = tuple(apply_rot(v) for v in vacated)
            for rv in rotated_vacated:
                for hcell in occ_host:
                    trans = hcell - rv
                    pkey = (rot.matrix, trans)
                    if pkey in seen_placements:
                        continue
                    seen_placements.add(pkey)
                    if any(
                        inv(hc - trans) in occ_guest for hc in occ_host
                    ):
                        continue  # the guest still collides with the host
                    for (nid1, p1) in g_host.slots():
                        rec1 = nodes[nid1]
                        d1 = orientation_port_deltas(rec1.orientation)[
                            PORT_INDEX[p1]
                        ]
                        target = g_host.pos_of[nid1] + d1
                        nid2 = g_guest.cells.get(inv(target - trans))
                        if nid2 is None:
                            continue
                        self._insert_reseeded(
                            world,
                            protocol,
                            evaluate,
                            nid1,
                            d1,
                            nid2,
                            None,
                            rot,
                            trans,
                            dirty,
                        )

    def _insert_reseeded(
        self,
        world: World,
        protocol: Protocol,
        evaluate,
        nid1: int,
        d1: int,
        nid2: int,
        p2,
        rot,
        trans: int,
        dirty: Set[int],
    ) -> None:
        """Materialize one re-seeded placement as a canonical candidate.

        ``d1`` is the packed world-frame delta from the anchor ``nid1``
        toward the landing cell of ``nid2``; the anchor's port ``p1`` and
        (when not already fixed by the caller) the guest's port ``p2`` are
        recovered by matching oriented port deltas — the alignment
        condition ``rot(d2) == -d1`` of the §3 kernel.
        """
        if nid1 in dirty or nid2 in dirty:
            return  # regeneration of the dirty endpoint covers this pair
        nodes = world.nodes
        ports = world.ports
        rec1 = nodes[nid1]
        deltas1 = orientation_port_deltas(rec1.orientation)
        p1 = None
        for i, port in enumerate(ports):
            if deltas1[i] == d1:
                p1 = port
                break
        if p1 is None:  # pragma: no cover - d1 is always a unit delta
            return
        if p2 is None:
            rec2 = nodes[nid2]
            rdeltas2 = orientation_port_deltas(rot.compose(rec2.orientation))
            for i, port in enumerate(ports):
                if rdeltas2[i] == -d1:
                    p2 = port
                    break
            if p2 is None:  # pragma: no cover - the rotation group is closed
                return
        # The same static gates iter_node_candidates applies: skip pairs no
        # rule can ever fire on before spending an evaluation (statically
        # dead candidates evaluate to None anyway, so this only trims the
        # evaluation count, never the cached set).
        protocol_program = protocol.program
        sid1, sid2 = rec1.sid, nodes[nid2].sid
        if (
            protocol_program is not None
            and world.space is protocol_program.space
            and protocol_program.exact
        ):
            hot_mask = protocol_program.hot_mask
            if not (hot_mask >> sid1 & 1 or hot_mask >> sid2 & 1):
                return
            if not protocol_program.pair_can_fire(sid1, sid2):
                return
            if not (
                protocol_program.can_fire(sid1, PORT_INDEX[p1], 0)
                and protocol_program.can_fire(sid2, PORT_INDEX[p2], 0)
            ):
                return
        else:
            decode = world.space.states
            s1, s2 = decode[sid1], decode[sid2]
            if not (protocol.is_hot(s1) or protocol.is_hot(s2)):
                return
            if not protocol.pair_compatible(s1, s2):
                return
        cand = Candidate(nid1, p1, nid2, p2, 0, rot, unpack_delta(trans))
        key = candidate_key(cand)
        if key in self._entries:
            return  # already cached (a surviving or just-reseeded entry)
        self.evaluations += 1
        update = evaluate(protocol, world, cand)
        if update is None:
            return
        self._entries[key] = (candidate_sort_key(cand), (cand, update))
        self._by_node.setdefault(cand.nid1, set()).add(key)
        self._by_node.setdefault(cand.nid2, set()).add(key)
        self._sorted = None

    def _generate_for_node(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        nid: int,
        seen: Set[CandidateKey],
    ) -> None:
        """Regenerate entries for one node; ``seen`` spans one refresh so
        a candidate whose endpoints are both being regenerated (or an
        ineffective one) is evaluated once, not once per endpoint."""
        self.refreshed_nodes += 1
        for cand in iter_node_candidates(world, protocol, nid):
            key = candidate_key(cand)
            if key in seen:
                continue  # regenerated from the partner this refresh
            seen.add(key)
            self.evaluations += 1
            update = evaluate(protocol, world, cand)
            if update is None:
                continue
            self._entries[key] = (candidate_sort_key(cand), (cand, update))
            self._by_node.setdefault(cand.nid1, set()).add(key)
            self._by_node.setdefault(cand.nid2, set()).add(key)
