"""The shared effective-candidate layer behind every scheduler.

All schedulers of ``repro.core.scheduler`` select among the *effective*
permissible interactions of the current configuration. This module owns
that set, in three interchangeable forms that provably produce the same
canonically ordered list:

* :func:`reference_effective_candidates` — filter the world's full
  permissible enumeration (the §3 reference; also yields ``|Perm|``, needed
  for exact raw-step accounting).
* :func:`hot_effective_candidates` — brute-force enumeration restricted to
  *hot* nodes (states that can appear in effective interactions). Same
  result, skips provably ineffective pairs.
* :class:`EffectiveCandidateCache` — incremental maintenance of the hot
  enumeration. After each event only the *dirty neighborhood* is
  re-examined: nodes whose state changed (tracked by the
  :class:`~repro.core.world.World` change journal) plus the precise
  fallout of each record in the world-delta journal — merges, splits,
  surgery excisions and hybrid leaf moves all carry enough information
  (moved nodes, vacated/occupied cells, the cut frontier) to prune and
  re-seed only what the mutation can actually touch. Entries between
  untouched components survive verbatim; unexplained ``Component.version``
  movement still falls back to a coarse per-component sweep.

Occupancy duality
-----------------

Delta pruning rests on one geometric fact with two faces. Under the §3
permissibility predicate, a cached placement depends on the two components'
cell sets only through collision probes, so:

* occupancy **growth** (merges, transplants, the occupied half of a move)
  can *invalidate* surviving placements but never create new ones — the
  cache drops exactly the entries whose cached placement collides with a
  newly occupied cell (:meth:`EffectiveCandidateCache._prune_survivors`);
* occupancy **shrinkage** (splits, excisions, the vacated half of a move)
  can *create* placements but never invalidate survivors — the cache keeps
  every surviving entry verbatim and discovers the newly permitted ones
  from the vacated cells: candidates anchored next to a vacated cell come
  from re-examining the journalled cut frontier, and placements that were
  blocked *only* by departed cells are re-seeded by sliding each multi-cell
  partner's footprint over the vacated cells
  (:meth:`EffectiveCandidateCache._reseed_vacated`).

Surviving intra/inter entries keep their exact rotation, translation and
update in both directions; component ids are never reused, so the
canonical orientation of a surviving entry is stable across any number of
splits and merges.

Canonical form
--------------

A physical interaction can be described from either endpoint (with the
placement expressed in either component's frame). To make the three forms
comparable — and seeded runs identical across schedulers — every candidate
is produced in a *canonical orientation*:

* intra-component: the smaller node id is ``nid1``;
* inter-component: ``nid1`` belongs to the component with the smaller id
  (component ids are never reused, so this is stable between events).

and the final list is sorted by :func:`candidate_sort_key`, a total order
over full candidate identity **including rotation and translation** (two
inter-component candidates may differ only in alignment; dropping the
placement from the key made the round-robin adversary tie-break on hash
order, breaking cross-process determinism — the bug fixed by this module).

Correctness of the incremental form rests on locality: a candidate's
permissibility and effectiveness depend only on the states, ports, and
bond of its two endpoints and on the cell sets of their two components.
Any mutation of those — state writes, bond flips, merges, splits, moves,
surgery — either lands the endpoint in the change journal, is described
exactly by a world-delta record, or bumps the owning component's version
(the coarse backstop), so :meth:`refresh` invalidates exactly the entries
that may have changed. Property tests
(``tests/test_scheduler_equivalence.py`` and the randomized
world-mutation stress harness in ``tests/test_world_deltas.py``) drive
random executions with merges, splits, fault injection, surgery, and
synchronous rounds and assert the cache equals the reference after every
mutation.
"""

from __future__ import annotations

from operator import itemgetter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core import columnar as _col
from repro.core.columnar import (
    BatchContext,
    get_index,
    key_is_inter,
    key_nid1,
    key_nid2,
    packed_key,
    packed_sort_key,
    resolve_columnar,
)
from repro.core.protocol import Protocol, Update
from repro.core.world import (
    Candidate,
    MergeRecord,
    MoveRecord,
    SplitRecord,
    World,
)
from repro.geometry.packed import (
    orientation_port_deltas,
    pack_delta,
    packed_rotation,
    unpack_delta,
)
from repro.geometry.ports import PORT_INDEX, PORTS_3D
from repro.geometry.rotation import rotations_for_dimension

#: Identity key of a candidate: endpoints, ports, and placement rotation,
#: packed into one int (see :func:`repro.core.columnar.packed_key`). The
#: translation and bond are determined by these plus the current
#: configuration, so the key is unique within one configuration.
CandidateKey = int

#: A cached entry: the candidate and its (effective) update.
Entry = Tuple[Candidate, Update]

#: Internal sort key: the ``(hi, lo)`` packed image of
#: :func:`candidate_sort_key` — identical order, int comparisons, and an
#: int64-pair representation the columnar store keeps in sorted arrays.
SortKey = Tuple[int, int]


def candidate_key(cand: Candidate) -> CandidateKey:
    """A hashable identity key for a canonical candidate (packed int)."""
    return packed_key(cand)


def candidate_sort_key(cand: Candidate):
    """A deterministic total order over candidates.

    Includes the bond and the full placement (rotation matrix and
    translation): inter-component candidates may differ *only* in
    alignment, and the order of this list feeds RNG-indexed draws and the
    round-robin adversary's turn — it must be decided by value, never by
    set/hash iteration order.
    """
    return (
        cand.nid1,
        cand.port1.value,
        cand.nid2,
        cand.port2.value,
        cand.bond,
        () if cand.rotation is None else cand.rotation.matrix,
        () if cand.translation is None else cand.translation.as_tuple(),
    )


def canonicalize(world: World, cand: Candidate) -> Candidate:
    """Re-orient a candidate into the canonical form described above.

    Intra candidates are flipped by swapping endpoints (the bond is
    symmetric); inter candidates produced by the world's reference
    enumeration are already canonical (it enumerates component pairs in
    component-id order), so only the intra case needs work.
    """
    if cand.intra:
        if cand.nid1 > cand.nid2:
            return Candidate(
                cand.nid2, cand.port2, cand.nid1, cand.port1, cand.bond
            )
        return cand
    cid1 = world.nodes[cand.nid1].component_id
    cid2 = world.nodes[cand.nid2].component_id
    if cid1 > cid2:  # pragma: no cover - reference enumeration is canonical
        raise AssertionError(
            "inter candidate not in canonical component order; generate it "
            "from the lower-id component instead of flipping frames"
        )
    return cand


def iter_intra_candidates(
    world: World, protocol: Protocol, nid: int
) -> Iterator[Candidate]:
    """Every *possibly effective* intra-component candidate at ``nid``.

    The (at most one per port) grid-adjacent pairs, probed on the packed
    occupancy of the component's geometry snapshot and pruned by the same
    hot/pair/static-effectiveness hints as the inter axis. Shared by the
    scalar enumeration and the columnar batch path (which vectorizes only
    the population-sized inter axis — a node has at most ``|ports|`` intra
    candidates, so the scalar probe is already minimal).
    """
    program = protocol.program
    compiled = (
        program is not None and world.space is program.space and program.exact
    )
    nodes = world.nodes
    rec = nodes[nid]
    comp = world.components[rec.component_id]
    sid = rec.sid
    if compiled:
        hot_mask = program.hot_mask
        nid_hot = bool(hot_mask >> sid & 1)
    else:
        decode = world.space.states
        state = decode[sid]
        nid_hot = protocol.is_hot(state)
    geom = world.geometry(comp)
    ppos = geom.pos_of[nid]
    deltas = orientation_port_deltas(rec.orientation)
    for i, port in enumerate(world.ports):
        other = geom.cells.get(ppos + deltas[i])
        if other is None:
            continue
        other_sid = nodes[other].sid
        if compiled:
            if not (nid_hot or hot_mask >> other_sid & 1):
                continue
            if not program.pair_can_fire(sid, other_sid):
                continue
        else:
            other_state = decode[other_sid]
            if not (nid_hot or protocol.is_hot(other_state)):
                continue
            if not protocol.pair_compatible(state, other_state):
                continue
        a, b = (nid, other) if nid < other else (other, nid)
        cand = world.intra_candidate(a, b)
        if cand is None:
            continue
        if compiled and not (
            program.can_fire(nodes[a].sid, PORT_INDEX[cand.port1], cand.bond)
            and program.can_fire(nodes[b].sid, PORT_INDEX[cand.port2], cand.bond)
        ):
            continue  # statically ineffective: no rule has these endpoints
        yield cand


def iter_node_candidates(
    world: World, protocol: Protocol, nid: int
) -> Iterator[Candidate]:
    """Every *possibly effective* canonical candidate involving ``nid``.

    Prunes with the protocol's hot/pair/port hints (all over-approximate,
    so no effective candidate is missed); the caller evaluates the
    survivors. When the world is bound to an *exact* compiled program
    (``repro.core.program``), the hints are resolved on interned state ids
    — the per-state hot bitmask, the pair index, and the oriented port
    hints — and the per-``(state, port, bond)`` static-effectiveness index
    additionally discards candidates **no** rule can ever fire on before
    any geometry probe or dispatch happens. Candidates whose two endpoints
    are both enumerated (e.g. both dirty, or both hot) are yielded once
    per endpoint — deduplicate by :func:`candidate_key`.
    """
    program = protocol.program
    compiled = (
        program is not None and world.space is program.space and program.exact
    )
    nodes = world.nodes
    rec = nodes[nid]
    sid = rec.sid
    decode = world.space.states
    if compiled:
        hot_mask = program.hot_mask
        nid_hot = bool(hot_mask >> sid & 1)
    else:
        state = decode[sid]
        nid_hot = protocol.is_hot(state)
    yield from iter_intra_candidates(world, protocol, nid)
    # Inter-component: nid against every node of another component whose
    # state passes the hints, oriented by component id.
    for partner_sid, members in world.by_sid.items():
        if compiled:
            if not (nid_hot or hot_mask >> partner_sid & 1):
                continue
            if not program.pair_can_fire(sid, partner_sid):
                continue
            hints = None
        else:
            partner_state = decode[partner_sid]
            if not (nid_hot or protocol.is_hot(partner_state)):
                continue
            if not protocol.pair_compatible(state, partner_state):
                continue
            hints = protocol.port_hints(state, partner_state)
        for other in members:
            if other == nid:
                continue
            other_rec = nodes[other]
            if other_rec.component_id == rec.component_id:
                continue
            first_is_nid = rec.component_id < other_rec.component_id
            first, second = (nid, other) if first_is_nid else (other, nid)
            if compiled:
                # Oriented bond-0 hints double as the static-effectiveness
                # filter: a port pair absent here cannot hit the table.
                s1, s2 = (sid, partner_sid) if first_is_nid else (partner_sid, sid)
                for p1i, p2i in program.oriented_hints(s1, s2):
                    yield from world.inter_candidates(
                        first, PORTS_3D[p1i], second, PORTS_3D[p2i]
                    )
                continue
            if hints is None:
                combos: Iterator[Tuple] = (
                    (p1, p2) for p1 in world.ports for p2 in world.ports
                )
            elif first_is_nid:
                combos = iter(hints)
            else:
                # Hints are oriented (port of nid, port of partner).
                combos = ((p2, p1) for p1, p2 in hints)
            for p1, p2 in combos:
                yield from world.inter_candidates(first, p1, second, p2)


def hot_effective_candidates(
    world: World,
    protocol: Protocol,
    evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
) -> List[Entry]:
    """Brute-force hot enumeration: the canonical effective list.

    Enumerates candidates involving each hot node, deduplicates by key,
    evaluates, and sorts. Equal to the effective subset of the reference
    enumeration because hotness over-approximates ("an interaction between
    two non-hot states is ineffective").
    """
    entries: Dict[CandidateKey, Entry] = {}
    seen: Set[CandidateKey] = set()
    is_hot = _hot_sid_check(world, protocol)
    for sid in world.by_sid:
        if not is_hot(sid):
            continue
        for nid in world.by_sid[sid]:
            for cand in iter_node_candidates(world, protocol, nid):
                key = candidate_key(cand)
                if key in seen:  # already evaluated from the other endpoint
                    continue
                seen.add(key)
                update = evaluate(protocol, world, cand)
                if update is not None:
                    entries[key] = (cand, update)
    out = list(entries.values())
    out.sort(key=lambda cu: packed_sort_key(cu[0]))
    return out


def _hot_sid_check(world: World, protocol: Protocol) -> Callable[[int], bool]:
    """Hot-state predicate over interned ids: the compiled hot bitmask
    when the world is bound to an exact program, else the protocol's
    public hint decoded at the edge."""
    program = protocol.program
    if program is not None and world.space is program.space and program.exact:
        mask = program.hot_mask
        return lambda sid: bool(mask >> sid & 1)
    decode = world.space.states
    return lambda sid: protocol.is_hot(decode[sid])


def reference_effective_candidates(
    world: World,
    protocol: Protocol,
    evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
) -> Tuple[List[Entry], int]:
    """The canonical effective list via full enumeration, plus ``|Perm|``.

    The reference form: every permissible interaction is evaluated, so the
    exact schedulers can compute the effectiveness probability
    ``|Eff| / |Perm|`` for raw-step accounting.
    """
    effective: List[Entry] = []
    permissible = 0
    program = protocol.program
    compiled = (
        program is not None and world.space is program.space and program.exact
    )
    nodes = world.nodes
    for raw in world.enumerate_candidates():
        permissible += 1
        cand = canonicalize(world, raw)
        if compiled and not (
            program.can_fire(
                nodes[cand.nid1].sid, PORT_INDEX[cand.port1], cand.bond
            )
            and program.can_fire(
                nodes[cand.nid2].sid, PORT_INDEX[cand.port2], cand.bond
            )
        ):
            # Statically ineffective: still counted in |Perm| (the raw-step
            # law needs the full permissible count) but never dispatched.
            continue
        update = evaluate(protocol, world, cand)
        if update is not None:
            effective.append((cand, update))
    effective.sort(key=lambda cu: packed_sort_key(cu[0]))
    return effective, permissible


class EffectiveCandidateCache:
    """Incrementally maintained canonical effective-candidate list.

    Bound lazily to one (world, protocol) pair; :meth:`refresh` returns the
    current sorted list, re-examining only the dirty neighborhood since the
    previous call:

    * nodes recorded in the world's change journal (state writes, the two
      endpoints of every applied interaction);
    * component *merges*, consumed from the world-delta journal: only the
      nodes that physically moved into the kept frame are re-examined, while
      the kept component's surviving entries are *pruned* — an entry is
      dropped iff its cached placement now collides with a newly occupied
      cell (checked on the packed representation), since occupancy growth
      can invalidate but never create permissible placements;
    * component *splits* (bond removals, surgery excisions), the dual case:
      shrinkage can create placements but never invalidate survivors, so
      every surviving entry is kept verbatim, the departed fragment's nodes
      and the journalled cut frontier are re-examined, and placements that
      were blocked only by vacated cells are re-seeded against multi-cell
      partners (see the "occupancy duality" section of the module
      docstring);
    * intra-component *moves* (hybrid leaf rotations): the vacated half is
      treated as a split, the occupied half as a merge, and the swung
      node(s) re-examined;
    * all nodes of components whose ``version`` counter moved without a
      consumable delta record (external surgery that bypasses the journal,
      a broken version trail mid-gap) or that appeared or vanished outside
      a journalled delta — the coarse sweep, kept as the backstop.

    If a journal was truncated under the cache (an unboundedly long gap
    between refreshes) or the binding changed, the cache falls back to a
    full rebuild / coarse sweep — never to a stale answer.

    ``split_delta=False`` disables the fine path for split and move
    records (they fall through to the coarse version sweep, the pre-delta
    behavior) — kept selectable for benchmarking
    (``benchmarks/bench_splits.py``) and as a cross-check oracle.
    """

    def __init__(
        self, split_delta: bool = True, columnar: Optional[bool] = None
    ) -> None:
        self._world: Optional[World] = None
        self._protocol: Optional[Protocol] = None
        self._cursor = 0
        self._delta_cursor = 0
        self.split_delta = split_delta
        #: Columnar backend resolved against the process default
        #: (``REPRO_COLUMNAR`` / :func:`repro.core.columnar.resolve_columnar`).
        self.columnar = resolve_columnar(columnar)
        self._batch: Optional[BatchContext] = None
        self._comp_versions: Dict[int, int] = {}
        self._comp_members: Dict[int, Tuple[int, ...]] = {}
        #: key -> (sort key, entry): the sort key is computed once per
        #: insertion instead of once per entry per refresh-sort.
        self._entries: Dict[CandidateKey, Tuple[SortKey, Entry]] = {}
        self._by_node: Dict[int, Set[CandidateKey]] = {}
        self._sorted: Optional[List[Entry]] = None
        # The dense columnar store, active whenever a BatchContext is (an
        # exact compiled program + numpy). Entries live *only* as aligned
        # int64 columns in canonical ``(hi, lo)`` order — identity key,
        # sort-key halves, update — plus a lazy entry column materialized
        # per selected candidate. ``_entries``/``_by_node`` stay empty in
        # this mode; invalidation, pruning, and the canonical merge all
        # run as array ops.
        self._dense = False
        self._d_id = None
        self._d_hi = None
        self._d_lo = None
        self._d_upd = None
        self._d_ent = None
        #: Generated-row chunks awaiting the canonical merge (dense mode).
        self._d_new: List[tuple] = []
        #: Rows marked dropped but not yet compressed out (one compress
        #: per refresh instead of one per delta record).
        self._d_drop = None
        #: Lazy (nid1, nid2, is_inter) columns of the store, shared by
        #: every prune/invalidate pass between structural changes.
        self._d_cols = None
        #: Re-seeded rows awaiting the merge: ``(key, hi, lo, cand,
        #: update)`` — kept as Python rows (reseeds are rare) so the
        #: split/move prune can still probe them individually.
        self._pending_rows: List[tuple] = []
        self._pending_keys: Set[CandidateKey] = set()
        #: Protocol-delta evaluations performed (the scheduler cost metric
        #: reported by ``benchmarks/bench_schedulers.py``).
        self.evaluations = 0
        self.full_rebuilds = 0
        self.refreshed_nodes = 0
        #: Merges handled by delta pruning (vs. coarse version sweeps).
        self.merge_prunes = 0
        #: Splits handled by delta pruning (vs. coarse version sweeps).
        self.split_prunes = 0
        #: Moves handled by delta pruning (vs. coarse version sweeps).
        self.move_prunes = 0

    # ------------------------------------------------------------------

    def refresh(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
    ) -> List[Entry]:
        """The canonical sorted effective list for the current configuration."""
        if world is not self._world or protocol is not self._protocol:
            self._rebuild(world, protocol, evaluate)
            assert self._sorted is not None
            return self._sorted
        dirty = world.changes_since(self._cursor)
        if dirty is None:  # journal truncated under us
            self._rebuild(world, protocol, evaluate)
            assert self._sorted is not None
            return self._sorted
        self._cursor = world.change_cursor()
        deltas = world.deltas_since(self._delta_cursor)
        self._delta_cursor = world.delta_cursor()
        self._batch = (
            self._make_batch(world, protocol) if self.columnar else None
        )
        if (self._batch is not None) != self._dense:
            # The generation regime changed under the binding (space swap,
            # program rebind, backend toggle): rebuild into the other
            # representation — never patch one store with the other's rows.
            self._rebuild(world, protocol, evaluate)
            assert self._sorted is not None
            return self._sorted
        if deltas:
            # Records replay in mutation order, so each component's version
            # trail can be followed bump by bump across a whole gap of
            # interleaved merges, splits, and moves.
            for kind, record in deltas:
                if kind == "merge":
                    self._apply_merge_delta(world, record, dirty)
                elif not self.split_delta:
                    continue
                elif kind == "split":
                    self._apply_split_delta(
                        world, protocol, evaluate, record, dirty
                    )
                elif kind == "move":
                    self._apply_move_delta(
                        world, protocol, evaluate, record, dirty
                    )
        # Deltas with an up-to-date version trail were consumed above; any
        # remaining version movement (unjournalled surgery, records whose
        # trail broke mid-gap, a truncated delta journal) is swept coarsely.
        self._sweep_component_versions(world, dirty)
        if dirty:
            if self._dense:
                self._dense_invalidate(dirty)
                self._dense_generate(
                    world, protocol, evaluate, sorted(dirty)
                )
            else:
                self._invalidate(dirty)
                seen: Set[CandidateKey] = set()
                for nid in sorted(dirty):
                    if nid in world.nodes:
                        self._generate_for_node(
                            world, protocol, evaluate, nid, seen
                        )
            self._sorted = None
        if self._sorted is None:
            self._finalize_sorted()
        return self._sorted

    # ------------------------------------------------------------------

    def _rebuild(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
    ) -> None:
        self._world = world
        self._protocol = protocol
        self._cursor = world.change_cursor()
        self._delta_cursor = world.delta_cursor()
        self._entries.clear()
        self._by_node.clear()
        self._comp_versions = {
            cid: comp.version for cid, comp in world.components.items()
        }
        self._comp_members = {
            cid: tuple(comp.cells.values())
            for cid, comp in world.components.items()
        }
        self.full_rebuilds += 1
        self._d_id = self._d_hi = self._d_lo = None
        self._d_upd = self._d_ent = None
        self._d_new = []
        self._d_drop = None
        self._d_cols = None
        self._pending_rows = []
        self._pending_keys = set()
        self._batch = (
            self._make_batch(world, protocol) if self.columnar else None
        )
        self._dense = self._batch is not None
        is_hot = _hot_sid_check(world, protocol)
        if self._dense:
            hot = [
                nid
                for sid in world.by_sid
                if is_hot(sid)
                for nid in world.by_sid[sid]
            ]
            self._dense_generate(world, protocol, evaluate, hot)
        else:
            seen: Set[CandidateKey] = set()
            for sid in world.by_sid:
                if not is_hot(sid):
                    continue
                for nid in world.by_sid[sid]:
                    self._generate_for_node(
                        world, protocol, evaluate, nid, seen
                    )
        self._finalize_sorted()

    def _make_batch(
        self, world: World, protocol: Protocol
    ) -> Optional[BatchContext]:
        """A batch-generation context, when the regime allows one.

        Requires numpy and an exact compiled program bound to this world's
        space: exactness is what makes the oriented bond-0 hints a complete
        static-effectiveness filter, so batch dispatch (one table hit per
        group) evaluates exactly the candidate set the scalar path does.
        """
        if _col.np is None:
            return None
        program = protocol.program
        if (
            program is None
            or world.space is not program.space
            or not program.exact
        ):
            return None
        if len(world.components) > _col.MAX_TAG_COMPONENTS:
            return None  # pragma: no cover - beyond occupancy-tag range
        idx = get_index(world)
        idx.sync()
        return BatchContext(world, protocol, program, idx)

    def _finalize_sorted(self) -> None:
        """Materialize the canonical sorted list.

        Dense mode: merge the generated-row chunks and re-seeded rows
        into the sorted int64 store (C-level compress + merge) and hand
        out a lazy sequence view. Fallback: the historical full sort of
        the dict entry values.
        """
        if self._dense:
            self._sorted = self._d_finalize()
        else:
            self._sorted = [
                entry
                for _key, entry in sorted(
                    self._entries.values(), key=itemgetter(0)
                )
            ]

    # -- the dense sorted store (columnar mode) ------------------------

    def _d_finalize(self) -> "_DenseView":
        """Merge pending rows into the canonical (hi, lo)-sorted store."""
        np = _col.np
        if self._d_drop is not None:
            # Prunes ran but no node went dirty: apply the deferred drops
            # before any positional merge below.
            self._d_compress(~self._d_drop)
            self._d_drop = None
        chunks = self._d_new
        pend = self._pending_rows
        self._d_new = []
        if pend:
            self._pending_rows = []
            self._pending_keys = set()
            n = len(pend)
            ids = np.fromiter((r[0] for r in pend), np.int64, count=n)
            his = np.fromiter((r[1] for r in pend), np.int64, count=n)
            los = np.fromiter((r[2] for r in pend), np.int64, count=n)
            upds = np.empty(n, dtype=object)
            ents = np.empty(n, dtype=object)
            for j, r in enumerate(pend):
                upds[j] = r[4]
                ents[j] = (r[3], r[4])
            chunks = chunks + [(ids, his, los, upds, ents)]
        if chunks:
            ids = np.concatenate([c[0] for c in chunks])
            his = np.concatenate([c[1] for c in chunks])
            los = np.concatenate([c[2] for c in chunks])
            upds = np.concatenate([c[3] for c in chunks])
            ents = np.concatenate([c[4] for c in chunks])
            order = np.lexsort((los, his))
            ids, his, los = ids[order], his[order], los[order]
            upds, ents = upds[order], ents[order]
            store = self._d_id
            if (
                store is None
                or not len(store)
                or len(ids) * 4 >= max(64, len(store))
            ):
                if store is not None and len(store):
                    ids = np.concatenate([store, ids])
                    his = np.concatenate([self._d_hi, his])
                    los = np.concatenate([self._d_lo, los])
                    upds = np.concatenate([self._d_upd, upds])
                    ents = np.concatenate([self._d_ent, ents])
                    order = np.lexsort((los, his))
                    ids, his, los = ids[order], his[order], los[order]
                    upds, ents = upds[order], ents[order]
                self._d_id, self._d_hi, self._d_lo = ids, his, los
                self._d_upd, self._d_ent = upds, ents
            else:
                d_hi, d_lo = self._d_hi, self._d_lo
                pos = d_hi.searchsorted(his, side="left")
                # A tie run starts exactly where the first >= element
                # equals the incoming hi — one gather finds them all.
                ties = np.nonzero(
                    (pos < len(d_hi))
                    & (d_hi[np.minimum(pos, len(d_hi) - 1)] == his)
                )[0]
                for j in ties.tolist():
                    # Runs of equal ``hi`` (distinct alignments of one
                    # port pair) are rare and tiny; order them by ``lo``.
                    p = int(pos[j])
                    hi, lo = int(his[j]), int(los[j])
                    while p < len(d_hi) and d_hi[p] == hi and d_lo[p] < lo:
                        p += 1
                    pos[j] = p
                self._d_id = np.insert(self._d_id, pos, ids)
                self._d_hi = np.insert(self._d_hi, pos, his)
                self._d_lo = np.insert(self._d_lo, pos, los)
                self._d_upd = np.insert(self._d_upd, pos, upds)
                self._d_ent = np.insert(self._d_ent, pos, ents)
            self._d_cols = None
        elif self._d_id is None:
            self._d_id = np.empty(0, dtype=np.int64)
            self._d_hi = np.empty(0, dtype=np.int64)
            self._d_lo = np.empty(0, dtype=np.int64)
            self._d_upd = np.empty(0, dtype=object)
            self._d_ent = np.empty(0, dtype=object)
        return _DenseView(
            self._d_id, self._d_hi, self._d_lo, self._d_upd, self._d_ent
        )

    def _d_compress(self, keep) -> None:
        self._d_id = self._d_id[keep]
        self._d_hi = self._d_hi[keep]
        self._d_lo = self._d_lo[keep]
        self._d_upd = self._d_upd[keep]
        self._d_ent = self._d_ent[keep]
        self._d_cols = None

    def _d_endpoints(self):
        """The (nid1, nid2, is_inter) columns of the store, memoized."""
        cols = self._d_cols
        if cols is None:
            ids = self._d_id
            n1 = ids >> _col.K_NID1_SHIFT
            n2 = (ids >> _col.K_NID2_SHIFT) & (_col.NID_LIMIT - 1)
            cols = (n1, n2, (ids & _col.KEY_ROT_MASK) != 0)
            self._d_cols = cols
        return cols

    def _d_contains(self, hi: int, lo: int) -> bool:
        """Whether the store holds the row with this exact sort key (the
        key determines the placement within one configuration, so this is
        identity containment)."""
        d_hi = self._d_hi
        if d_hi is None or len(d_hi) == 0:
            return False
        np = _col.np
        p = int(np.searchsorted(d_hi, hi, side="left"))
        d_lo = self._d_lo
        while p < len(d_hi) and d_hi[p] == hi:
            if d_lo[p] == lo:
                return self._d_drop is None or not self._d_drop[p]
            p += 1
        return False

    def _dense_invalidate(self, dirty: Set[int]) -> None:
        """Drop every stored or pending row with a dirty endpoint."""
        np = _col.np
        ids = self._d_id
        if ids is not None and len(ids):
            dirty_arr = np.fromiter(dirty, np.int64, count=len(dirty))
            dirty_arr.sort()
            n1, n2, _inter = self._d_endpoints()
            hit = _col.in_sorted(n1, dirty_arr)
            hit |= _col.in_sorted(n2, dirty_arr)
            if self._d_drop is not None:
                hit |= self._d_drop
                self._d_drop = None
            if hit.any():
                self._d_compress(~hit)
        if self._pending_rows:
            kept = []
            for row in self._pending_rows:
                key = row[0]
                if key_nid1(key) in dirty or key_nid2(key) in dirty:
                    self._pending_keys.discard(key)
                else:
                    kept.append(row)
            self._pending_rows = kept

    def _dense_generate(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        nids,
    ) -> None:
        """Regenerate entries for a batch of dirty nodes as array chunks.

        The population-sized inter axis runs on the batch kernels
        (:meth:`BatchContext.inter_rows`); deduplication by identity key
        reproduces the scalar evaluation count (each generated inter row
        is one candidate the scalar path would have evaluated — the
        oriented hints of an exact program are a complete
        static-effectiveness filter, so none evaluates to ``None``).
        Intra candidates (at most ``|ports|`` per node) stay scalar.
        """
        np = _col.np
        live = [nid for nid in nids if nid in world.nodes]
        if not live:
            return
        self.refreshed_nodes += len(live)
        sink: List[tuple] = []
        self._batch.inter_rows(live, sink)
        total = sum(len(c[0]) for c in sink)
        if total:
            keys = np.concatenate([c[0] for c in sink])
            his = np.concatenate([c[1] for c in sink])
            los = np.concatenate([c[2] for c in sink])
            upds = np.empty(total, dtype=object)
            o = 0
            for c in sink:
                n = len(c[0])
                if n:
                    upds[o:o + n].fill(c[3])
                o += n
            uk, ui = np.unique(keys, return_index=True)
            evals = len(uk)
            self.evaluations += evals
            sched = getattr(evaluate, "__self__", None)
            if sched is not None:
                sched.evaluations += evals
            self._d_new.append(
                (uk, his[ui], los[ui], upds[ui], np.empty(evals, object))
            )
            self._sorted = None
        seen: Set[CandidateKey] = set()
        irows: List[tuple] = []
        for nid in live:
            for cand in iter_intra_candidates(world, protocol, nid):
                key = candidate_key(cand)
                if key in seen:
                    continue  # regenerated from the partner this refresh
                seen.add(key)
                self.evaluations += 1
                update = evaluate(protocol, world, cand)
                if update is None:
                    continue
                hi, lo = packed_sort_key(cand)
                irows.append((key, hi, lo, (cand, update), update))
        if irows:
            n = len(irows)
            ids = np.fromiter((r[0] for r in irows), np.int64, count=n)
            his = np.fromiter((r[1] for r in irows), np.int64, count=n)
            los = np.fromiter((r[2] for r in irows), np.int64, count=n)
            upds = np.empty(n, dtype=object)
            ents = np.empty(n, dtype=object)
            for j, r in enumerate(irows):
                ents[j] = r[3]
                upds[j] = r[4]
            self._d_new.append((ids, his, los, upds, ents))
            self._sorted = None

    def _sweep_component_versions(self, world: World, dirty: Set[int]) -> None:
        """Fold component-version movement into the dirty node set."""
        seen = set()
        for cid, comp in world.components.items():
            seen.add(cid)
            version = comp.version
            if self._comp_versions.get(cid) == version:
                continue
            # New component or bumped version: its previous and current
            # members all carry potentially stale geometry.
            dirty.update(self._comp_members.get(cid, ()))
            members = tuple(comp.cells.values())
            dirty.update(members)
            self._comp_versions[cid] = version
            self._comp_members[cid] = members
        for cid in list(self._comp_versions):
            if cid not in seen:  # vanished (merged away)
                dirty.update(self._comp_members.pop(cid, ()))
                del self._comp_versions[cid]

    def _invalidate(self, dirty: Set[int]) -> None:
        for nid in dirty:
            keys = self._by_node.pop(nid, None)
            if not keys:
                continue
            for key in keys:
                if self._entries.pop(key, None) is None:
                    continue
                nid1 = key_nid1(key)
                other = key_nid2(key) if nid1 == nid else nid1
                peer = self._by_node.get(other)
                if peer is not None:
                    peer.discard(key)

    def _drop_entry(self, key: CandidateKey) -> None:
        """Remove one entry and unindex it from both endpoints."""
        if self._entries.pop(key, None) is None:
            return
        for nid in (key_nid1(key), key_nid2(key)):
            peers = self._by_node.get(nid)
            if peers is not None:
                peers.discard(key)

    def _apply_merge_delta(
        self, world: World, record: MergeRecord, dirty: Set[int]
    ) -> None:
        """Consume one journalled merge with delta pruning.

        Only applies when the cache's version trail matches the record
        exactly (kept component seen at ``version - 1``, absorbed component
        tracked); anything else — interleaved splits or surgery, components
        born since the last refresh, chained merges whose kept side has
        since vanished — is left to the coarse version sweep, which remains
        fully correct on its own.

        Under the fine path, the nodes that moved into the kept frame are
        dirtied (their placements and seam adjacencies changed), and the
        kept component's surviving inter entries are collision-probed
        against the newly occupied packed cells: occupancy growth can only
        *remove* permissible placements, so dropping exactly the colliding
        entries keeps the cache equal to the reference.
        """
        kept, version, absorbed, new_cells, moved = record
        if self._comp_versions.get(kept) != version - 1:
            return
        if absorbed not in self._comp_versions:
            return
        comp = world.components.get(kept)
        if comp is None:
            return
        survivors = self._comp_members.get(kept, ())
        # The absorbed component is consumed here: its members (== moved,
        # when the trail is clean) regenerate from their new geometry.
        dirty.update(self._comp_members.pop(absorbed, ()))
        del self._comp_versions[absorbed]
        dirty.update(moved)
        self._prune_survivors(world, survivors, new_cells, dirty)
        self._comp_versions[kept] = version
        self._comp_members[kept] = tuple(survivors) + tuple(moved)
        self.merge_prunes += 1

    def _prune_survivors(
        self,
        world: World,
        survivors: Tuple[int, ...],
        new_cells: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Drop surviving inter entries whose cached placement collides
        with newly occupied packed cells.

        The growth half of the occupancy duality: new occupancy can only
        *remove* permissible placements, so dropping exactly the colliding
        entries keeps the cache equal to the reference.
        """
        if self._dense:
            self._prune_survivors_dense(world, survivors, new_cells, dirty)
            self._prune_pending(world, survivors, new_cells, dirty)
            return
        nodes = world.nodes
        components = world.components
        np = _col.np
        new_arr = None
        if np is not None and len(new_cells) >= 8:
            new_arr = np.fromiter(
                new_cells, dtype=np.int64, count=len(new_cells)
            )
        for nid in survivors:
            if nid in dirty:
                continue  # already slated for full regeneration
            keys = self._by_node.get(nid)
            if not keys:
                continue
            for key in [k for k in keys if key_is_inter(k)]:
                item = self._entries.get(key)
                if item is None:
                    continue
                cand = item[1][0]
                other = cand.nid2 if cand.nid1 == nid else cand.nid1
                if other in dirty:
                    continue  # invalidated/regenerated via the dirty set
                other_cid = nodes[other].component_id
                other_comp = components.get(other_cid)
                if (
                    other_comp is None
                    or self._comp_versions.get(other_cid) != other_comp.version
                ):
                    # The partner component changed in the same gap (e.g.
                    # both endpoints' components merged): neither record
                    # alone can delta-probe this entry, since each side's
                    # new cells must be checked against the *other side's
                    # full placement*. Re-examine the survivor wholesale.
                    dirty.add(nid)
                    break
                g_other = world.geometry(other_comp)
                trans = pack_delta(cand.translation)
                if cand.nid1 == nid:
                    # This side has the smaller cid: the partner is placed
                    # into this frame — collide its placed cells with the
                    # newly occupied ones.
                    if new_arr is not None and len(g_other.occ) >= 8:
                        collides = bool(
                            np.isin(
                                g_other.rotated_array(cand.rotation) + trans,
                                new_arr,
                            ).any()
                        )
                    else:
                        collides = any(
                            (cell + trans) in new_cells
                            for cell in g_other.rotated(cand.rotation)
                        )
                else:
                    # Partner frame hosts the placement: map the new cells
                    # into it and probe the partner's occupancy.
                    if new_arr is not None and len(g_other.occ) >= 8:
                        collides = bool(
                            np.isin(
                                _col.rotate_cells(cand.rotation, new_arr)
                                + trans,
                                g_other.occ_array(),
                            ).any()
                        )
                    else:
                        rotate = packed_rotation(cand.rotation)
                        occ = g_other.occ
                        collides = any(
                            (rotate(cell) + trans) in occ
                            for cell in new_cells
                        )
                if collides:
                    self._drop_entry(key)
                    self._sorted = None

    def _prune_survivors_dense(
        self,
        world: World,
        survivors: Tuple[int, ...],
        new_cells: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """The merge prune over the dense store: one vectorized sweep.

        Selects the surviving inter rows with array masks, resolves the
        partner-side component trail per *component* instead of per
        entry, probes singleton partners in one membership gather per
        rotation code, and leaves only multi-cell partners (few per
        merge) to per-row probes — same decisions as the scalar walk.
        """
        np = _col.np
        ids = self._d_id
        if ids is None or not len(ids) or not survivors or not new_cells:
            return
        surv = np.fromiter(survivors, np.int64, count=len(survivors))
        surv.sort()
        n1, n2, inter = self._d_endpoints()
        s1 = _col.in_sorted(n1, surv)
        m = s1 | _col.in_sorted(n2, surv)
        m &= inter
        if self._d_drop is not None:
            m &= ~self._d_drop
        rows = np.nonzero(m)[0]
        if dirty and len(rows):
            # The dirty filter only matters on the selected rows — keep
            # the full-store passes to the survivor masks above.
            dirty_arr = np.fromiter(dirty, np.int64, count=len(dirty))
            dirty_arr.sort()
            ok = ~_col.in_sorted(n1[rows], dirty_arr)
            ok &= ~_col.in_sorted(n2[rows], dirty_arr)
            rows = rows[ok]
        if not len(rows):
            return
        first = s1[rows]  # survivor is nid1: partner placed in this frame
        mine = np.where(first, n1[rows], n2[rows])
        partner = np.where(first, n2[rows], n1[rows])
        batch = self._batch
        pcid = batch.idx.cid[partner]
        components = world.components
        clean = np.ones(len(rows), dtype=bool)
        for cid in np.unique(pcid).tolist():
            comp = components.get(cid)
            if (
                comp is None
                or self._comp_versions.get(cid) != comp.version
            ):
                # Partner component changed in the same gap: re-examine
                # the survivor side wholesale (see the scalar walk).
                sel = pcid == cid
                clean[sel] = False
                dirty.update(mine[sel].tolist())
        if not clean.any():
            return
        trans = (self._d_lo[rows] & _col._LO_TRANS_MASK) - _col.PACKED_ORIGIN
        codes = ids[rows] & _col.KEY_ROT_MASK
        ptag = batch.node_tag[partner]
        occ_tags = batch.occ_tags
        new_arr = np.fromiter(new_cells, np.int64, count=len(new_cells))
        drop = np.zeros(len(rows), dtype=bool)
        for code in np.unique(codes[clean]).tolist():
            rot = _col.ROT_BY_CODE[code - 1]
            sel = clean & (codes == code)
            a = sel & first
            if a.any():
                # Partner placed into the survivor's frame: a collision
                # with a new cell, pulled back into the partner frame by
                # the inverse rotation, lands on the partner's occupancy
                # — which the global tag array answers for every row.
                inv = rot.inverse()
                inv_new = _col.rotate_cells(inv, new_arr)
                inv_t = (
                    _col.rotate_cells(inv, trans[a] + _col.PACKED_ORIGIN)
                    - _col.PACKED_ORIGIN
                )
                probes = (ptag[a] - inv_t)[:, None] + inv_new[None, :]
                drop[a] = (
                    _col.in_sorted(probes.reshape(-1), occ_tags)
                    .reshape(probes.shape)
                    .any(axis=1)
                )
            b = sel & ~first
            if b.any():
                # Partner hosts: map the new cells into its frame and
                # probe its occupancy through the tags.
                rnew = _col.rotate_cells(rot, new_arr)
                probes = (ptag[b] + trans[b])[:, None] + rnew[None, :]
                drop[b] = (
                    _col.in_sorted(probes.reshape(-1), occ_tags)
                    .reshape(probes.shape)
                    .any(axis=1)
                )
        if drop.any():
            # Defer the physical removal: mark the rows and compress once
            # per refresh (in invalidate or finalize), not once per record.
            if self._d_drop is None:
                self._d_drop = np.zeros(len(ids), dtype=bool)
            self._d_drop[rows[drop]] = True
            self._sorted = None

    def _prune_pending(
        self,
        world: World,
        survivors: Tuple[int, ...],
        new_cells: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """The merge prune over not-yet-merged re-seeded rows (scalar —
        reseeds are rare), mirroring the decisions of the stored walk."""
        if not self._pending_rows or not survivors or not new_cells:
            return
        sset = set(survivors)
        nodes = world.nodes
        components = world.components
        kept = []
        for row in self._pending_rows:
            key, _hi, _lo, cand, _update = row
            drop = False
            if key_is_inter(key):
                if cand.nid1 in sset:
                    nid, other = cand.nid1, cand.nid2
                elif cand.nid2 in sset:
                    nid, other = cand.nid2, cand.nid1
                else:
                    nid = None
                if nid is not None and nid not in dirty and other not in dirty:
                    other_cid = nodes[other].component_id
                    other_comp = components.get(other_cid)
                    if (
                        other_comp is None
                        or self._comp_versions.get(other_cid)
                        != other_comp.version
                    ):
                        dirty.add(nid)
                    else:
                        g_other = world.geometry(other_comp)
                        trans = pack_delta(cand.translation)
                        if cand.nid1 == nid:
                            drop = any(
                                (cell + trans) in new_cells
                                for cell in g_other.rotated(cand.rotation)
                            )
                        else:
                            rotate = packed_rotation(cand.rotation)
                            occ = g_other.occ
                            drop = any(
                                (rotate(cell) + trans) in occ
                                for cell in new_cells
                            )
            if drop:
                self._pending_keys.discard(key)
                self._sorted = None
            else:
                kept.append(row)
        self._pending_rows = kept

    def _apply_split_delta(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        record: SplitRecord,
        dirty: Set[int],
    ) -> None:
        """Consume one journalled split (or surgery excision) finely.

        Only applies when the cache's version trail matches the record
        exactly (kept component seen at ``version - 1``); anything else is
        left to the coarse version sweep, which remains fully correct on
        its own.

        The shrinkage half of the occupancy duality: vacated cells can
        create placements but never invalidate survivors, so surviving
        entries are kept verbatim while

        * the departed fragments' nodes regenerate wholesale (their
          component ids changed, so old intra entries across the cut and
          stale-orientation inter entries all re-derive);
        * the journalled cut frontier regenerates (newly opened slots —
          covers every new candidate whose placement lands a node *on* a
          vacated target cell, which is all of them for singleton
          partners);
        * placements of multi-cell partners that were blocked only by
          departed cells are re-seeded from the vacated cells
          (:meth:`_reseed_vacated`).
        """
        kept, version, fragments, vacated, frontier = record
        if self._comp_versions.get(kept) != version - 1:
            return
        comp = world.components.get(kept)
        if comp is None:
            return
        if any(fcid in self._comp_versions for fcid, _v, _m in fragments):
            return  # cid reuse — cannot happen, but never mis-track
        departed: Set[int] = set()
        for fcid, fversion, members in fragments:
            dirty.update(members)
            departed.update(members)
            # Track fragments at their birth version: later records in the
            # same gap (a fragment merging or re-splitting) advance the
            # trail record by record.
            self._comp_versions[fcid] = fversion
            self._comp_members[fcid] = tuple(members)
        survivors = tuple(
            nid
            for nid in self._comp_members.get(kept, ())
            if nid not in departed
        )
        self._comp_versions[kept] = version
        self._comp_members[kept] = survivors
        dirty.update(frontier)
        self._reseed_vacated(
            world, protocol, evaluate, kept, comp, vacated, dirty
        )
        self.split_prunes += 1

    def _apply_move_delta(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        record: MoveRecord,
        dirty: Set[int],
    ) -> None:
        """Consume one journalled intra-component move (leaf rotation).

        A move is shrinkage at the vacated cell plus growth at the newly
        occupied one: survivors are pruned against the occupied cell
        (merge rule), new placements are re-seeded from the vacated cell
        (split rule), and the swung node(s) regenerate wholesale.
        """
        cid, version, dirtied, vacated, new_cells, frontier = record
        if self._comp_versions.get(cid) != version - 1:
            return
        comp = world.components.get(cid)
        if comp is None:
            return
        dirty.update(dirtied)
        dirty.update(frontier)
        self._prune_survivors(
            world, self._comp_members.get(cid, ()), new_cells, dirty
        )
        self._comp_versions[cid] = version
        self._reseed_vacated(
            world, protocol, evaluate, cid, comp, vacated, dirty
        )
        self.move_prunes += 1

    def _reseed_vacated(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        kept_cid: int,
        comp,
        vacated: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Discover inter candidates newly permitted by occupancy shrinkage.

        A placement that was impermissible before the shrinkage and is
        permissible after it must have had *all* its collisions on
        now-vacated cells — so every such placement lands a cell of one
        side on a vacated cell. Three partner classes:

        * singleton partners need no work here: their only landing cell is
          the target slot, so a new candidate's kept-side anchor is
          grid-adjacent to a vacated cell — a frontier node, already
          dirty;
        * multi-cell partners with a clean version trail are re-seeded by
          sliding their footprint over the vacated cells (both canonical
          orientations, depending on which side's frame hosts the
          placement) and verifying each seeded placement against the
          *current* occupancy;
        * partners whose trail is mid-flux in the same gap (pending
          records) are folded into the dirty set wholesale — their full
          regeneration covers every pair with the kept component.
        """
        if not vacated:
            return
        g_kept = world.geometry(comp)
        for tcid in sorted(self._comp_versions):
            if tcid == kept_cid:
                continue
            tcomp = world.components.get(tcid)
            if tcomp is None:
                continue  # merged away later in the gap: that record/sweep dirties it
            if self._comp_versions.get(tcid) != tcomp.version:
                dirty.update(self._comp_members.get(tcid, ()))
                dirty.update(tcomp.cells.values())
                continue
            if tcomp.size() < 2:
                continue  # covered by the frontier (see docstring)
            members = self._comp_members.get(tcid, ())
            if members and all(nid in dirty for nid in members):
                continue  # full regeneration already covers this pair
            g_t = world.geometry(tcomp)
            if kept_cid < tcid:
                self._reseed_as_host(
                    world, protocol, evaluate, g_kept, g_t, vacated, dirty
                )
            else:
                self._reseed_as_guest(
                    world, protocol, evaluate, g_t, g_kept, vacated, dirty
                )

    def _reseed_as_host(
        self,
        world: World,
        protocol: Protocol,
        evaluate,
        g_host,
        g_guest,
        vacated: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Re-seed placements of a multi-cell guest into the shrunk host.

        The host (the component that vacated cells) has the smaller cid,
        so candidates place the guest into the host's frame. Seeds land
        each rotated guest cell on each vacated host cell; surviving the
        collision probe against the current host occupancy makes the
        placement permissible, and each guest node-port facing an occupied
        host cell anchors one canonical candidate.
        """
        occ_host = g_host.occ
        ports = world.ports
        nodes = world.nodes
        seen_placements: Set[Tuple[tuple, int]] = set()
        for rot in rotations_for_dimension(world.dimension):
            rotated = g_guest.rotated(rot)
            guest_items = tuple(zip(g_guest.cells.values(), rotated))
            for v in vacated:
                for rcell in rotated:
                    trans = v - rcell
                    pkey = (rot.matrix, trans)
                    if pkey in seen_placements:
                        continue
                    seen_placements.add(pkey)
                    if any((c + trans) in occ_host for c in rotated):
                        continue  # still collides elsewhere
                    for nid2, rc2 in guest_items:
                        image = rc2 + trans
                        rec2 = nodes[nid2]
                        rdeltas = orientation_port_deltas(
                            rot.compose(rec2.orientation)
                        )
                        for i2, p2 in enumerate(ports):
                            pos1 = image + rdeltas[i2]
                            nid1 = g_host.cells.get(pos1)
                            if nid1 is None:
                                continue
                            self._insert_reseeded(
                                world,
                                protocol,
                                evaluate,
                                nid1,
                                image - pos1,
                                nid2,
                                p2,
                                rot,
                                trans,
                                dirty,
                            )

    def _reseed_as_guest(
        self,
        world: World,
        protocol: Protocol,
        evaluate,
        g_host,
        g_guest,
        vacated: FrozenSet[int],
        dirty: Set[int],
    ) -> None:
        """Re-seed placements of the shrunk component into a multi-cell host.

        The partner hosts (smaller cid), so candidates place the shrunk
        guest into the *host's* frame; ``vacated`` cells live in the guest
        frame. Seeds land each rotated vacated cell on each occupied host
        cell — exactly the previously-colliding placements — then probe
        the guest's current footprint against the host occupancy via
        inverse rotation (cheap when the host is small, regardless of the
        guest's size), and anchor candidates at the host's open slots.
        """
        occ_host = g_host.occ
        occ_guest = g_guest.occ
        nodes = world.nodes
        ports = world.ports
        seen_placements: Set[Tuple[tuple, int]] = set()
        for rot in rotations_for_dimension(world.dimension):
            apply_rot = packed_rotation(rot)
            inv = packed_rotation(rot.inverse())
            rotated_vacated = tuple(apply_rot(v) for v in vacated)
            for rv in rotated_vacated:
                for hcell in occ_host:
                    trans = hcell - rv
                    pkey = (rot.matrix, trans)
                    if pkey in seen_placements:
                        continue
                    seen_placements.add(pkey)
                    if any(
                        inv(hc - trans) in occ_guest for hc in occ_host
                    ):
                        continue  # the guest still collides with the host
                    for (nid1, p1) in g_host.slots():
                        rec1 = nodes[nid1]
                        d1 = orientation_port_deltas(rec1.orientation)[
                            PORT_INDEX[p1]
                        ]
                        target = g_host.pos_of[nid1] + d1
                        nid2 = g_guest.cells.get(inv(target - trans))
                        if nid2 is None:
                            continue
                        self._insert_reseeded(
                            world,
                            protocol,
                            evaluate,
                            nid1,
                            d1,
                            nid2,
                            None,
                            rot,
                            trans,
                            dirty,
                        )

    def _insert_reseeded(
        self,
        world: World,
        protocol: Protocol,
        evaluate,
        nid1: int,
        d1: int,
        nid2: int,
        p2,
        rot,
        trans: int,
        dirty: Set[int],
    ) -> None:
        """Materialize one re-seeded placement as a canonical candidate.

        ``d1`` is the packed world-frame delta from the anchor ``nid1``
        toward the landing cell of ``nid2``; the anchor's port ``p1`` and
        (when not already fixed by the caller) the guest's port ``p2`` are
        recovered by matching oriented port deltas — the alignment
        condition ``rot(d2) == -d1`` of the §3 kernel.
        """
        if nid1 in dirty or nid2 in dirty:
            return  # regeneration of the dirty endpoint covers this pair
        nodes = world.nodes
        ports = world.ports
        rec1 = nodes[nid1]
        deltas1 = orientation_port_deltas(rec1.orientation)
        p1 = None
        for i, port in enumerate(ports):
            if deltas1[i] == d1:
                p1 = port
                break
        if p1 is None:  # pragma: no cover - d1 is always a unit delta
            return
        if p2 is None:
            rec2 = nodes[nid2]
            rdeltas2 = orientation_port_deltas(rot.compose(rec2.orientation))
            for i, port in enumerate(ports):
                if rdeltas2[i] == -d1:
                    p2 = port
                    break
            if p2 is None:  # pragma: no cover - the rotation group is closed
                return
        # The same static gates iter_node_candidates applies: skip pairs no
        # rule can ever fire on before spending an evaluation (statically
        # dead candidates evaluate to None anyway, so this only trims the
        # evaluation count, never the cached set).
        protocol_program = protocol.program
        sid1, sid2 = rec1.sid, nodes[nid2].sid
        if (
            protocol_program is not None
            and world.space is protocol_program.space
            and protocol_program.exact
        ):
            hot_mask = protocol_program.hot_mask
            if not (hot_mask >> sid1 & 1 or hot_mask >> sid2 & 1):
                return
            if not protocol_program.pair_can_fire(sid1, sid2):
                return
            if not (
                protocol_program.can_fire(sid1, PORT_INDEX[p1], 0)
                and protocol_program.can_fire(sid2, PORT_INDEX[p2], 0)
            ):
                return
        else:
            decode = world.space.states
            s1, s2 = decode[sid1], decode[sid2]
            if not (protocol.is_hot(s1) or protocol.is_hot(s2)):
                return
            if not protocol.pair_compatible(s1, s2):
                return
        cand = Candidate(nid1, p1, nid2, p2, 0, rot, unpack_delta(trans))
        key = candidate_key(cand)
        if self._dense:
            hi, lo = packed_sort_key(cand)
            if key in self._pending_keys or self._d_contains(hi, lo):
                return  # already cached (a surviving or re-seeded row)
            self.evaluations += 1
            update = evaluate(protocol, world, cand)
            if update is None:
                return
            self._pending_rows.append((key, hi, lo, cand, update))
            self._pending_keys.add(key)
            self._sorted = None
            return
        if key in self._entries:
            return  # already cached (a surviving or just-reseeded entry)
        self.evaluations += 1
        update = evaluate(protocol, world, cand)
        if update is None:
            return
        self._entries[key] = (packed_sort_key(cand), (cand, update))
        self._by_node.setdefault(cand.nid1, set()).add(key)
        self._by_node.setdefault(cand.nid2, set()).add(key)
        self._sorted = None

    def _generate_for_node(
        self,
        world: World,
        protocol: Protocol,
        evaluate: Callable[[Protocol, World, Candidate], Optional[Update]],
        nid: int,
        seen: Set[CandidateKey],
    ) -> None:
        """Regenerate entries for one node; ``seen`` spans one refresh so
        a candidate whose endpoints are both being regenerated (or an
        ineffective one) is evaluated once, not once per endpoint."""
        self.refreshed_nodes += 1
        entries = self._entries
        by_node = self._by_node
        for cand in iter_node_candidates(world, protocol, nid):
            key = candidate_key(cand)
            if key in seen:
                continue  # regenerated from the partner this refresh
            seen.add(key)
            self.evaluations += 1
            update = evaluate(protocol, world, cand)
            if update is None:
                continue
            entries[key] = (packed_sort_key(cand), (cand, update))
            by_node.setdefault(cand.nid1, set()).add(key)
            by_node.setdefault(cand.nid2, set()).add(key)


class _DenseView:
    """Sequence view over the dense store's sorted columns.

    The canonical effective list without per-refresh Python
    materialization: a :class:`~repro.core.world.Candidate` is rebuilt
    from its int row (:func:`repro.core.columnar.candidate_from_row`)
    only when accessed — a scheduler selects one entry per event — and
    memoized in the shared entry column, so rows surviving across events
    materialize at most once. Supports exactly what the schedulers, the
    hybrid mover and the equivalence tests use: ``len``, integer/slice
    indexing, iteration, truthiness, and ``==`` against lists of entries
    (both orientations — ``list.__eq__`` returns ``NotImplemented`` for
    a view, so Python falls through to the reflected comparison here).
    """

    __slots__ = ("_id", "_hi", "_lo", "_upd", "_ent")

    def __init__(self, ids, his, los, upds, ents) -> None:
        self._id = ids
        self._hi = his
        self._lo = los
        self._upd = upds
        self._ent = ents

    def _entry(self, i: int):
        ent = self._ent[i]
        if ent is None:
            cand = _col.candidate_from_row(
                int(self._id[i]), int(self._hi[i]), int(self._lo[i])
            )
            ent = (cand, self._upd[i])
            self._ent[i] = ent
        return ent

    def __len__(self) -> int:
        return len(self._id)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._entry(j) for j in range(*i.indices(len(self._id)))]
        if i < 0:
            i += len(self._id)
        if not 0 <= i < len(self._id):
            raise IndexError(i)
        return self._entry(i)

    def __iter__(self):
        for i in range(len(self._id)):
            yield self._entry(i)

    def __bool__(self) -> bool:
        return len(self._id) > 0

    def __eq__(self, other):
        if isinstance(other, _DenseView):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_DenseView({list(self)!r})"
