"""Schedulers: the adversary / uniform-random interaction selection of §3.

Four interchangeable implementations of the *uniform random scheduler*
("in every step, selects independently and uniformly at random one of the
interactions permitted by E(t)"), all built on the shared canonical
effective-candidate layer of :mod:`repro.core.candidates`:

* :class:`EnumeratingScheduler` — reference implementation; enumerates the
  full permissible set, draws the geometric number of ineffective steps by
  exact inverse CDF, and picks uniformly among effective interactions.
  Exact in both trajectory law and raw step counts.
* :class:`RejectionScheduler` — same trajectory (it shares the canonical
  effective list, incrementally cached by default like ``HotScheduler``),
  but estimates the raw step count by rejection-sampling node-port pairs
  from the full superset (the accepted sequence is uniform over the
  permissible set, so the wait until the first effective draw has exactly
  the geometric law) instead of computing ``|Perm|``; falls back to the
  exact geometric tail after ``max_trials`` draws, without double-counting
  the observed wait.
* :class:`HotScheduler` — samples the effective-interaction jump chain
  directly and does not track raw steps. By default it maintains the
  effective set *incrementally* (:class:`EffectiveCandidateCache`),
  re-examining only the dirty neighborhood of the previous event — the
  cache consumes the world-delta journal, so merges, splits, surgery
  excisions and hybrid moves are all pruned finely; ``incremental=False``
  re-enumerates the hot neighborhood from scratch every event (the
  pre-cache behavior, kept for benchmarking and as a cross-check oracle),
  and ``split_delta=False`` keeps the cache but demotes split/move records
  to coarse version sweeps (the pre-split-delta behavior, benchmarked by
  ``benchmarks/bench_splits.py``).
* :class:`RoundRobinScheduler` — a deterministic *fair* adversary cycling
  through the same canonical candidate list.

Scheduler contract
------------------

``next_event`` returns ``None`` — and consumes **no randomness** — exactly
when no *effective* interaction is permissible (the configuration has
stabilized). It never raises for an empty permissible set: a single free
node is simply a stabilized configuration. (Historically the enumerating
scheduler raised ``SchedulerError`` here, diverging from ``HotScheduler``
and from this contract.)

Otherwise every scheduler consumes exactly two draws from ``rng`` per
event, in this order:

1. ``rng.randrange(len(effective))`` — the selection, indexing the
   canonically sorted effective list;
2. ``rng.random()`` — the raw-step accounting draw (schedulers that do not
   track raw steps still consume it).

Because the effective list is identical across implementations (same
canonical orientation, same total sort order) and the RNG consumption is
identical, *seeded trajectories are identical across all the uniform
schedulers*, not merely equal in law — the property pinned by
``tests/test_scheduler_equivalence.py``. The round-robin adversary is
deterministic and consumes no randomness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SchedulerError
from repro.core.candidates import (
    EffectiveCandidateCache,
    Entry,
    hot_effective_candidates,
    reference_effective_candidates,
)
from repro.core.protocol import InteractionView, Protocol, Update
from repro.core.sampling import geometric_from_uniform
from repro.core.world import Candidate, World
from repro.geometry.ports import PORT_INDEX


@dataclass(frozen=True)
class ScheduledEvent:
    """One effective interaction chosen by a scheduler.

    ``raw_steps`` counts the scheduler steps consumed including the
    ineffective ones preceding this event; ``None`` when the scheduler does
    not track raw steps.
    """

    candidate: Candidate
    update: Update
    raw_steps: Optional[int]


def evaluate(protocol: Protocol, world: World, cand: Candidate) -> Optional[Update]:
    """Apply the protocol's delta to a candidate; ``None`` if ineffective.

    When the world is bound to the protocol's compiled program (it has
    adopted the program's state space), dispatch is the packed-IR fast
    path: node records already hold interned ids, so the whole ``delta``
    application is one int-dict hit with zero tuple or view allocation.
    Otherwise the boundary path builds an :class:`InteractionView` of
    public states and calls ``handle`` — same result, pinned by the
    compiled-vs-boundary equivalence tests.
    """
    program = protocol.program
    if program is not None and world.space is program.space:
        nodes = world.nodes
        return program.lookup(
            nodes[cand.nid1].sid,
            PORT_INDEX[cand.port1],
            nodes[cand.nid2].sid,
            PORT_INDEX[cand.port2],
            cand.bond,
        )
    view = InteractionView(
        world.state_of(cand.nid1),
        cand.port1,
        world.state_of(cand.nid2),
        cand.port2,
        cand.bond,
    )
    return protocol.handle(view)


class Scheduler:
    """Base class; subclasses yield the next effective interaction."""

    tracks_raw_steps: bool = False

    def __init__(self) -> None:
        #: Protocol-delta evaluations performed so far — the dominant cost
        #: of candidate discovery, reported by the scheduler benchmarks.
        self.evaluations = 0

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        """The next effective interaction, or ``None`` once no effective
        interaction is permissible (the configuration has stabilized).

        See the module docstring for the full contract (RNG consumption,
        canonical ordering, stabilization)."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    def _evaluate(
        self, protocol: Protocol, world: World, cand: Candidate
    ) -> Optional[Update]:
        self.evaluations += 1
        return evaluate(protocol, world, cand)


class EnumeratingScheduler(Scheduler):
    """Exact uniform scheduler by full enumeration (reference)."""

    tracks_raw_steps = True

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        effective, permissible = reference_effective_candidates(
            world, protocol, self._evaluate
        )
        if not effective:
            return None
        cand, update = effective[rng.randrange(len(effective))]
        # Raw steps until the first effective interaction: geometric with
        # success probability |Eff| / |Perm|, by exact inverse CDF.
        raw = geometric_from_uniform(rng.random(), len(effective) / permissible)
        return ScheduledEvent(cand, update, raw)


class RejectionScheduler(Scheduler):
    """Uniform scheduler whose raw steps come from rejection sampling.

    The event itself is the canonical selection shared by every scheduler;
    the *raw step count* is sampled by drawing node-port pairs uniformly
    from the full superset with a subsidiary RNG (seeded from the
    accounting draw, so the main stream stays in lockstep with the other
    schedulers), skipping impermissible draws, and counting permissible
    ones until the first effective draw. The count is Geometric(|Eff|/|Perm|)
    exactly — the standard rejection argument — without ever computing
    ``|Perm|``. After ``max_trials`` draws the exact geometric tail is
    added instead (memorylessness: the remaining wait after ``k`` observed
    ineffective steps is again geometric), so the wait is counted once,
    never twice.
    """

    tracks_raw_steps = True

    def __init__(
        self,
        max_trials: Optional[int] = None,
        incremental: bool = True,
        split_delta: bool = True,
        columnar: Optional[bool] = None,
    ) -> None:
        super().__init__()
        self.max_trials = max_trials
        self._cache = (
            EffectiveCandidateCache(split_delta=split_delta, columnar=columnar)
            if incremental
            else None
        )

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        if self._cache is not None:
            effective = self._cache.refresh(world, protocol, self._evaluate)
        else:
            effective = hot_effective_candidates(world, protocol, self._evaluate)
        if not effective:
            return None
        cand, update = effective[rng.randrange(len(effective))]
        sub = random.Random(rng.random())
        raw = self._sample_raw_steps(world, protocol, sub, len(effective))
        return ScheduledEvent(cand, update, raw)

    def _sample_raw_steps(
        self,
        world: World,
        protocol: Protocol,
        sub: random.Random,
        n_effective: int,
    ) -> int:
        n = world.size
        if n < 2:  # pragma: no cover - one node has no effective interaction
            raise SchedulerError("need at least two nodes to interact")
        ports = world.ports
        n_align = 1 if world.dimension == 2 else 4
        limit = self.max_trials if self.max_trials is not None else max(2000, 100 * n)
        raw = 0
        node_ids = list(world.nodes)
        for _ in range(limit):
            nid1 = node_ids[sub.randrange(n)]
            nid2 = node_ids[sub.randrange(n)]
            if nid1 == nid2:
                continue
            p1 = ports[sub.randrange(len(ports))]
            p2 = ports[sub.randrange(len(ports))]
            g = sub.randrange(n_align)
            rec1 = world.nodes[nid1]
            rec2 = world.nodes[nid2]
            if rec1.component_id == rec2.component_id:
                # Intra pairs have no alignment choice; normalize multiplicity
                # by accepting only one of the n_align rotation draws.
                if g != 0:
                    continue
                cand = world.check_intra(nid1, p1, nid2, p2)
                if cand is None:
                    continue
            else:
                alignments = world.inter_alignments(nid1, p1, nid2, p2)
                # The g-th alignment among the rotation-stabilizer choices;
                # in 2D there is at most one.
                if g >= len(alignments):
                    continue
                rot, trans = alignments[g]
                cand = Candidate(nid1, p1, nid2, p2, 0, rot, trans)
            raw += 1
            if self._evaluate(protocol, world, cand) is not None:
                return raw
        # Too many ineffective draws (Eff is a tiny fraction): add the exact
        # geometric tail for the remaining wait. By memorylessness this is
        # the conditional law given the observed ineffective prefix — the
        # prefix is counted once, here, and never again.
        permissible = world.candidate_count()
        return raw + geometric_from_uniform(
            sub.random(), n_effective / permissible
        )


class HotScheduler(Scheduler):
    """Accelerated scheduler sampling the effective-interaction jump chain.

    Exactly reproduces the trajectory of the uniform random scheduler (the
    conditional law of a uniform permissible draw given effectiveness is
    uniform on the effective set) without paying for ineffective steps.
    With ``incremental=True`` (the default) the effective set is maintained
    by an :class:`EffectiveCandidateCache` and each event re-examines only
    the neighborhood the previous event dirtied; with ``incremental=False``
    the hot neighborhood is re-enumerated from scratch every event.
    """

    tracks_raw_steps = False

    def __init__(
        self,
        incremental: bool = True,
        split_delta: bool = True,
        columnar: Optional[bool] = None,
    ) -> None:
        super().__init__()
        self.incremental = incremental
        self._cache = (
            EffectiveCandidateCache(split_delta=split_delta, columnar=columnar)
            if incremental
            else None
        )

    def _effective(self, world: World, protocol: Protocol) -> List[Entry]:
        if self._cache is not None:
            return self._cache.refresh(world, protocol, self._evaluate)
        return hot_effective_candidates(world, protocol, self._evaluate)

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        effective = self._effective(world, protocol)
        if not effective:
            return None
        cand, update = effective[rng.randrange(len(effective))]
        rng.random()  # accounting draw (unused): keep the RNG contract
        return ScheduledEvent(cand, update, None)


class RoundRobinScheduler(Scheduler):
    """A deterministic *fair* adversary.

    Cycles through the canonical effective list, ensuring every
    persistently enabled interaction is eventually selected. Used to
    exercise the "halts in every fair execution" side of the theorems
    without probabilistic assumptions. The canonical order is total over
    full candidate identity — including the placement rotation and
    translation, so inter-component candidates differing only in alignment
    are ordered by value, never by hash order (which varies across
    processes and broke fair-adversary determinism). Consumes no
    randomness.
    """

    tracks_raw_steps = False

    def __init__(
        self,
        incremental: bool = True,
        split_delta: bool = True,
        columnar: Optional[bool] = None,
    ) -> None:
        super().__init__()
        self._turn = 0
        self._cache = (
            EffectiveCandidateCache(split_delta=split_delta, columnar=columnar)
            if incremental
            else None
        )

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        if self._cache is not None:
            effective = self._cache.refresh(world, protocol, self._evaluate)
        else:
            effective = hot_effective_candidates(world, protocol, self._evaluate)
        if not effective:
            return None
        cand, update = effective[self._turn % len(effective)]
        self._turn += 1
        return ScheduledEvent(cand, update, None)


def make_scheduler(kind: str = "hot", **kwargs) -> Scheduler:
    """Factory: ``"enumerate"``, ``"rejection"``, ``"hot"``, ``"round-robin"``.

    Keyword arguments are forwarded to the scheduler constructor, e.g.
    ``make_scheduler("hot", incremental=False)`` for the non-cached hot
    scheduler or ``make_scheduler("rejection", max_trials=500)``.
    """
    if kind == "enumerate":
        return EnumeratingScheduler(**kwargs)
    if kind == "rejection":
        return RejectionScheduler(**kwargs)
    if kind == "hot":
        return HotScheduler(**kwargs)
    if kind == "round-robin":
        return RoundRobinScheduler(**kwargs)
    raise SchedulerError(f"unknown scheduler kind: {kind!r}")
