"""Schedulers: the adversary / uniform-random interaction selection of §3.

Three interchangeable implementations of the *uniform random scheduler*
("in every step, selects independently and uniformly at random one of the
interactions permitted by E(t)"):

* :class:`EnumeratingScheduler` — reference implementation; enumerates the
  permissible set, draws the geometric number of ineffective steps exactly,
  then picks uniformly among effective interactions. Exact in both
  trajectory law and raw step counts.
* :class:`RejectionScheduler` — draws node-port pairs uniformly from the
  full superset and accepts permissible ones. The accepted sequence is
  uniform over the permissible set (standard rejection argument), so the
  law is identical to the reference; raw step counts are exact as well.
* :class:`HotScheduler` — enumerates only candidates involving *hot* nodes
  (states that can appear in effective interactions) and picks uniformly
  among the effective ones. Because ineffective interactions do not change
  the configuration, the induced trajectory law equals the uniform
  scheduler's; raw step counts are not tracked (reported as ``None``).

A deterministic :class:`RoundRobinScheduler` is provided as a *fair*
adversary for executions where no probabilistic assumption is made.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import SchedulerError
from repro.core.protocol import InteractionView, Protocol, Update
from repro.core.world import Candidate, World


@dataclass(frozen=True)
class ScheduledEvent:
    """One effective interaction chosen by a scheduler.

    ``raw_steps`` counts the scheduler steps consumed including the
    ineffective ones preceding this event; ``None`` when the scheduler does
    not track raw steps.
    """

    candidate: Candidate
    update: Update
    raw_steps: Optional[int]


def evaluate(protocol: Protocol, world: World, cand: Candidate) -> Optional[Update]:
    """Apply the protocol's delta to a candidate; ``None`` if ineffective."""
    view = InteractionView(
        world.state_of(cand.nid1),
        cand.port1,
        world.state_of(cand.nid2),
        cand.port2,
        cand.bond,
    )
    return protocol.handle(view)


class Scheduler:
    """Base class; subclasses yield the next effective interaction."""

    tracks_raw_steps: bool = False

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        """The next effective interaction, or ``None`` once no effective
        interaction is permissible (the configuration has stabilized)."""
        raise NotImplementedError


class EnumeratingScheduler(Scheduler):
    """Exact uniform scheduler by full enumeration (reference)."""

    tracks_raw_steps = True

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        candidates = list(world.enumerate_candidates())
        if not candidates:
            raise SchedulerError("no permissible interaction exists")
        effective: List[Tuple[Candidate, Update]] = []
        for cand in candidates:
            update = evaluate(protocol, world, cand)
            if update is not None:
                effective.append((cand, update))
        if not effective:
            return None
        # Raw steps until the first effective interaction: geometric with
        # success probability |Eff| / |Perm|.
        p = len(effective) / len(candidates)
        raw = 1
        while rng.random() >= p:
            raw += 1
        cand, update = effective[rng.randrange(len(effective))]
        return ScheduledEvent(cand, update, raw)


class RejectionScheduler(Scheduler):
    """Uniform scheduler by rejection sampling from the pair superset.

    Every accepted draw is one raw scheduler step; draws rejected for
    impermissibility are not steps (the scheduler only ever selects
    permissible interactions). Falls back to enumeration after
    ``max_trials`` consecutive rejections/ineffective steps so that
    stabilization is always detected.
    """

    tracks_raw_steps = True

    def __init__(self, max_trials: Optional[int] = None) -> None:
        self.max_trials = max_trials

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        n = world.size
        if n < 2:
            raise SchedulerError("need at least two nodes to interact")
        ports = world.ports
        n_align = 1 if world.dimension == 2 else 4
        limit = self.max_trials if self.max_trials is not None else max(2000, 100 * n)
        raw = 0
        node_ids = list(world.nodes)
        fallback = EnumeratingScheduler()
        for _ in range(limit):
            nid1 = node_ids[rng.randrange(n)]
            nid2 = node_ids[rng.randrange(n)]
            if nid1 == nid2:
                continue
            p1 = ports[rng.randrange(len(ports))]
            p2 = ports[rng.randrange(len(ports))]
            g = rng.randrange(n_align)
            rec1 = world.nodes[nid1]
            rec2 = world.nodes[nid2]
            if rec1.component_id == rec2.component_id:
                # Intra pairs have no alignment choice; normalize multiplicity
                # by accepting only one of the n_align rotation draws.
                if g != 0:
                    continue
                cand = world.check_intra(nid1, p1, nid2, p2)
                if cand is None:
                    continue
            else:
                alignments = world.inter_alignments(nid1, p1, nid2, p2)
                # The g-th alignment among the rotation-stabilizer choices;
                # in 2D there is at most one.
                if g >= len(alignments):
                    continue
                rot, trans = alignments[g]
                cand = Candidate(nid1, p1, nid2, p2, 0, rot, trans)
            raw += 1
            update = evaluate(protocol, world, cand)
            if update is not None:
                return ScheduledEvent(cand, update, raw)
        # Too many rejections: either Eff is tiny or empty. Resolve exactly.
        event = fallback.next_event(world, protocol, rng)
        if event is None:
            return None
        return ScheduledEvent(event.candidate, event.update, raw + (event.raw_steps or 1))


class HotScheduler(Scheduler):
    """Accelerated scheduler sampling the effective-interaction jump chain.

    Exactly reproduces the trajectory law of the uniform random scheduler
    (the conditional law of a uniform permissible draw given effectiveness
    is uniform on the effective set) without paying for ineffective steps.
    """

    tracks_raw_steps = False

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        effective = self._effective_candidates(world, protocol)
        if not effective:
            return None
        cand, update = effective[rng.randrange(len(effective))]
        return ScheduledEvent(cand, update, None)

    @staticmethod
    def _effective_candidates(
        world: World, protocol: Protocol
    ) -> List[Tuple[Candidate, Update]]:
        hot_states = [s for s in world.by_state if protocol.is_hot(s)]
        hot: List[int] = []
        for s in hot_states:
            hot.extend(world.by_state[s])
        hot_set = set(hot)
        out: List[Tuple[Candidate, Update]] = []

        def consider(cand: Optional[Candidate]) -> None:
            if cand is None:
                return
            update = evaluate(protocol, world, cand)
            if update is not None:
                out.append((cand, update))

        for h in hot:
            rec = world.nodes[h]
            comp = world.components[rec.component_id]
            # Intra-component: adjacent pairs touching h.
            for port in world.ports:
                cell = rec.pos + world.world_port_direction(h, port)
                other = comp.cells.get(cell)
                if other is None:
                    continue
                if other in hot_set and other < h:
                    continue  # both hot: enumerate once
                if not protocol.pair_compatible(rec.state, world.state_of(other)):
                    continue
                consider(world.intra_candidate(h, other))
            # Inter-component: h against every node (of another component)
            # whose state is pair-compatible. Enumerating h always on the
            # first side covers all candidates involving h, because
            # permissibility requires h's slot to be open anyway.
            for partner_state in list(world.by_state):
                if not protocol.pair_compatible(rec.state, partner_state):
                    continue
                hints = protocol.port_hints(rec.state, partner_state)
                partner_hot = protocol.is_hot(partner_state)
                for nid2 in world.by_state[partner_state]:
                    if nid2 == h:
                        continue
                    if world.nodes[nid2].component_id == comp.cid:
                        continue
                    if partner_hot and nid2 in hot_set and nid2 < h:
                        continue
                    if hints is None:
                        combos: Iterable[Tuple] = (
                            (p1, p2) for p1 in world.ports for p2 in world.ports
                        )
                    else:
                        # Sort: frozenset iteration order is hash-dependent
                        # and the candidate order feeds the RNG draw.
                        combos = sorted(
                            hints, key=lambda pp: (pp[0].value, pp[1].value)
                        )
                    for p1, p2 in combos:
                        for cand in world.inter_candidates(h, p1, nid2, p2):
                            consider(cand)
        return out


class RoundRobinScheduler(Scheduler):
    """A deterministic *fair* adversary.

    Cycles through effective interactions ordered by a stable key, ensuring
    every persistently enabled interaction is eventually selected. Used to
    exercise the "halts in every fair execution" side of the theorems
    without probabilistic assumptions.
    """

    tracks_raw_steps = False

    def __init__(self) -> None:
        self._turn = 0

    def next_event(
        self, world: World, protocol: Protocol, rng: random.Random
    ) -> Optional[ScheduledEvent]:
        effective = HotScheduler._effective_candidates(world, protocol)
        if not effective:
            return None
        effective.sort(
            key=lambda cu: (
                cu[0].nid1,
                cu[0].nid2,
                cu[0].port1.value,
                cu[0].port2.value,
            )
        )
        cand, update = effective[self._turn % len(effective)]
        self._turn += 1
        return ScheduledEvent(cand, update, None)


def make_scheduler(kind: str = "hot", **kwargs) -> Scheduler:
    """Factory: ``"enumerate"``, ``"rejection"``, ``"hot"``, ``"round-robin"``."""
    if kind == "enumerate":
        return EnumeratingScheduler()
    if kind == "rejection":
        return RejectionScheduler(**kwargs)
    if kind == "hot":
        return HotScheduler()
    if kind == "round-robin":
        return RoundRobinScheduler()
    raise SchedulerError(f"unknown scheduler kind: {kind!r}")
