"""In-memory execution traces — the compatibility layer under ``repro.trace``.

A :class:`TraceRecorder` hooks into a :class:`~repro.core.simulator.Simulation`
and logs every applied effective interaction — the endpoints, ports, bond
transition, state updates, and (for inter-component bonds) the placement.
Traces serialize to plain JSON-compatible dicts and *replay* onto a fresh
world with the same initial configuration, reproducing the exact final
configuration.

This module predates (and is superseded by) the streaming trace subsystem
:mod:`repro.trace`, which wraps the same event vocabulary in the versioned
``repro.trace/v1`` NDJSON encoding — header snapshot, periodic checkpoints,
digest hash chain, bounded-memory writer, seekable verified replay. New
code should record through ``repro.trace``; this layer remains the
dependency-free core API (the streaming encoder imports its event shape,
state encodings, and world snapshots from here).

World snapshots (:func:`world_to_dict` / :func:`world_from_dict`) serialize
full configurations — states, per-node positions and orientations, bonds —
so long experiments can checkpoint; the streaming subsystem's checkpoint
records embed exactly these snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.protocol import Protocol, Update
from repro.core.simulator import Simulation
from repro.core.world import Candidate, World, bond_of
from repro.errors import SimulationError
from repro.geometry.ports import Port
from repro.geometry.rotation import Rotation
from repro.geometry.vec import Vec


@dataclass(frozen=True)
class TraceEvent:
    """One applied effective interaction, fully determined."""

    index: int
    nid1: int
    port1: str
    nid2: int
    port2: str
    bond: int
    new_state1: Any
    new_state2: Any
    new_bond: int
    rotation: Optional[tuple] = None
    translation: Optional[tuple] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "nid1": self.nid1,
            "port1": self.port1,
            "nid2": self.nid2,
            "port2": self.port2,
            "bond": self.bond,
            "new_state1": _state_repr(self.new_state1),
            "new_state2": _state_repr(self.new_state2),
            "new_bond": self.new_bond,
            "rotation": self.rotation,
            "translation": self.translation,
        }


def _state_repr(state: Any) -> Any:
    """States are arbitrary hashables; tuples and Ports get JSON encodings."""
    if isinstance(state, tuple):
        return ["__tuple__"] + [_state_repr(s) for s in state]
    if isinstance(state, Port):
        return ["__port__", state.value]
    return state


def _state_from_repr(obj: Any) -> Any:
    if isinstance(obj, list) and obj:
        if obj[0] == "__tuple__":
            return tuple(_state_from_repr(s) for s in obj[1:])
        if obj[0] == "__port__":
            return Port(obj[1])
    return obj


class TraceRecorder:
    """Collects :class:`TraceEvent` records from a running simulation.

    Attach via ``Simulation(..., trace=recorder.hook)`` or call
    :meth:`record` manually.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def hook(
        self, index: int, cand: Candidate, update: Update, world: World
    ) -> None:
        del world
        self.record(index, cand, update)

    def record(self, index: int, cand: Candidate, update: Update) -> None:
        rotation = None
        translation = None
        if cand.rotation is not None:
            rotation = tuple(map(tuple, cand.rotation.matrix))
        if cand.translation is not None:
            translation = cand.translation.as_tuple()
        self.events.append(
            TraceEvent(
                index=index,
                nid1=cand.nid1,
                port1=cand.port1.value,
                nid2=cand.nid2,
                port2=cand.port2.value,
                bond=cand.bond,
                new_state1=update[0],
                new_state2=update[1],
                new_bond=update[2],
                rotation=rotation,
                translation=translation,
            )
        )

    def to_list(self) -> List[Dict[str, Any]]:
        """The trace as JSON-compatible dicts."""
        return [e.to_dict() for e in self.events]


def record_run(
    world: World,
    protocol: Protocol,
    seed: int,
    max_events: int = 1_000_000,
) -> TraceRecorder:
    """Run to stabilization while recording the trace."""
    recorder = TraceRecorder()
    sim = Simulation(world, protocol, seed=seed, trace=recorder.hook)
    sim.run(max_events=max_events)
    return recorder


def replay(
    world: World,
    events: List[Dict[str, Any]],
    check_invariants: bool = False,
) -> None:
    """Apply a recorded trace onto a fresh world.

    The world must be in the trace's initial configuration (same node ids
    in the same states). Raises :class:`SimulationError` when an event does
    not apply cleanly — the signature of a behavioral change. Both the bond
    state and the node states are validated before each event is applied:
    every node a previous event updated must still hold that state when it
    is next touched, so a divergence is caught at the first event that
    observes it, with expected-vs-actual detail in the error.
    """
    # Node states the trace prefix determines: nid -> state set by the
    # latest applied event. Nodes the trace has not touched yet have no
    # expectation (the old encoding does not record initial states).
    expected: Dict[int, Any] = {}
    for obj in events:
        port1 = Port(obj["port1"])
        port2 = Port(obj["port2"])
        rotation = None
        translation = None
        if obj.get("rotation") is not None:
            rotation = Rotation(tuple(map(tuple, obj["rotation"])))
        if obj.get("translation") is not None:
            translation = Vec(*obj["translation"])
        cand = Candidate(
            obj["nid1"], port1, obj["nid2"], port2, obj["bond"],
            rotation, translation,
        )
        # Validate the candidate against the current configuration.
        rec1 = world.nodes.get(cand.nid1)
        rec2 = world.nodes.get(cand.nid2)
        if rec1 is None or rec2 is None:
            raise SimulationError(
                f"replay event {obj['index']}: unknown node ids"
            )
        actual_bond = world.bond_state(cand.nid1, port1, cand.nid2, port2)
        if cand.bond != actual_bond:
            raise SimulationError(
                f"replay event {obj['index']}: bond state diverged "
                f"(expected {cand.bond}, actual {actual_bond})"
            )
        for nid in (cand.nid1, cand.nid2):
            if nid in expected:
                actual_state = world.state_of(nid)
                if actual_state != expected[nid]:
                    raise SimulationError(
                        f"replay event {obj['index']}: node {nid} state "
                        f"diverged (expected {expected[nid]!r}, "
                        f"actual {actual_state!r})"
                    )
        update = (
            _state_from_repr(obj["new_state1"]),
            _state_from_repr(obj["new_state2"]),
            obj["new_bond"],
        )
        world.apply(cand, update)
        expected[cand.nid1] = update[0]
        expected[cand.nid2] = update[1]
        if check_invariants:
            world.check_invariants()


# ----------------------------------------------------------------------
# World snapshots
# ----------------------------------------------------------------------


def world_to_dict(world: World) -> Dict[str, Any]:
    """Serialize a full configuration (states, geometry, bonds)."""
    nodes = []
    decode = world.space.states
    for nid, rec in sorted(world.nodes.items()):
        nodes.append(
            {
                "nid": nid,
                "state": _state_repr(decode[rec.sid]),
                "component": rec.component_id,
                "pos": rec.pos.as_tuple(),
                "orientation": tuple(map(tuple, rec.orientation.matrix)),
            }
        )
    bonds = []
    for comp in world.components.values():
        for bond in comp.bonds:
            (a, pa), (b, pb) = sorted(bond, key=lambda e: (e[0], e[1].value))
            bonds.append([a, pa.value, b, pb.value])
    return {
        "dimension": world.dimension,
        "nodes": nodes,
        "bonds": sorted(bonds),
        # Allocator counters, so a restored world assigns the *same* fresh
        # node/component ids as the live world it was snapshotted from —
        # without them, replaying from a mid-run checkpoint relabels every
        # component a later split creates (bit-exactness would be lost).
        "next_nid": world._next_nid,
        "next_cid": world._next_cid,
    }


def world_from_dict(data: Dict[str, Any]) -> World:
    """Rebuild a world from :func:`world_to_dict` output.

    Node ids, component ids, positions, orientations and bonds are restored
    exactly; the result passes :meth:`World.check_invariants`.
    """
    from repro.core.world import Component, NodeRecord

    world = World(dimension=data["dimension"])
    max_nid = -1
    max_cid = -1
    for obj in data["nodes"]:
        nid = obj["nid"]
        cid = obj["component"]
        pos = Vec(*obj["pos"])
        orientation = Rotation(tuple(map(tuple, obj["orientation"])))
        state = _state_from_repr(obj["state"])
        sid = world.space.intern(state)
        world.nodes[nid] = NodeRecord(nid, sid, cid, pos, orientation)
        comp = world.components.get(cid)
        if comp is None:
            comp = Component(cid)
            world.components[cid] = comp
        if pos in comp.cells:
            raise SimulationError(f"snapshot places two nodes on {pos!r}")
        comp.cells[pos] = nid
        world.by_sid.setdefault(sid, set()).add(nid)
        max_nid = max(max_nid, nid)
        max_cid = max(max_cid, cid)
    for a, pa, b, pb in data["bonds"]:
        comp = world.components[world.nodes[a].component_id]
        comp.bonds.add(bond_of(a, Port(pa), b, Port(pb)))
    # A restored component was rebuilt wholesale: bump its version so any
    # consumer keying geometry off (cid, version) — candidate caches, the
    # columnar index's coarse backstop — treats it as changed rather than
    # aliasing a version-0 component it may have observed elsewhere.
    for comp in world.components.values():
        comp.version += 1
    # Pre-counter snapshots (older artifacts) fall back to max+1, which is
    # exact for initial configurations but can relabel later splits.
    world._next_nid = int(data.get("next_nid", max_nid + 1))
    world._next_cid = int(data.get("next_cid", max_cid + 1))
    world.check_invariants()
    return world
