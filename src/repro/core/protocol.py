"""Protocol definitions (Definition 1 of the paper).

A 2D (or 3D) protocol is a 4-tuple ``(Q, q0, Qout, delta)`` with
``delta : (Q x P) x (Q x P) x {0,1} -> Q x Q x {0,1}``. Two concrete forms
are provided:

* :class:`RuleProtocol` — ``delta`` given as an explicit table of effective
  rules, exactly as the paper presents Protocols 1, 2, 4 and 5. All
  transitions not listed are ineffective.
* :class:`AgentProtocol` — ``delta`` given as a pure Python handler that
  receives exactly the two interacting local states (plus ports and bond
  state) and returns the update. This is how we express the multi-phase
  leader programs of §5-§7, which the paper describes as "the leader
  operates as a TM"; the information flow is identical to a rule table.

Both forms expose a *hot state* predicate: an interaction can only be
effective if at least one endpoint is in a hot state. Schedulers use this to
skip provably ineffective interactions while preserving the exact law of the
uniform random scheduler's effective-interaction subsequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Set,
    Tuple,
)

from repro.errors import ProtocolError
from repro.core.program import CompiledProgram, MemoProgram, compile_rules
from repro.geometry.ports import PORT_INDEX, Port, ports_for_dimension

State = Hashable

#: The left-hand side of a transition: ((a, p1), (b, p2), c).
RuleLHS = Tuple[Tuple[State, Port], Tuple[State, Port], int]
#: The right-hand side of a transition: (a', b', c').
RuleRHS = Tuple[State, State, int]


@dataclass(frozen=True)
class Rule:
    """A single effective transition ``(a, p1), (b, p2), c -> (a', b', c')``."""

    state1: State
    port1: Port
    state2: State
    port2: Port
    bond: int
    new_state1: State
    new_state2: State
    new_bond: int

    @property
    def lhs(self) -> RuleLHS:
        return ((self.state1, self.port1), (self.state2, self.port2), self.bond)

    @property
    def rhs(self) -> RuleRHS:
        return (self.new_state1, self.new_state2, self.new_bond)

    def is_effective(self) -> bool:
        """The paper calls a transition effective if it changes anything."""
        return (
            self.state1 != self.new_state1
            or self.state2 != self.new_state2
            or self.bond != self.new_bond
        )


@dataclass(frozen=True)
class InteractionView:
    """What a handler sees: the two local states, ports, and bond state."""

    state1: State
    port1: Port
    state2: State
    port2: Port
    bond: int


#: The update returned by a handler: (new_state1, new_state2, new_bond).
Update = Tuple[State, State, int]

Handler = Callable[[InteractionView], Optional[Update]]


class Protocol:
    """Abstract base for protocols executed by the geometric simulator.

    Subclasses must provide :meth:`handle`; the remaining hooks have
    conservative defaults.
    """

    #: Dimension of the model: 2 (four ports) or 3 (six ports).
    dimension: int = 2

    #: The initial state of an ordinary node.
    initial_state: State = "q0"

    #: The initial state of the unique leader, when the protocol uses one.
    leader_state: Optional[State] = None

    #: Dispatch toggle: ``False`` disables the compiled fast path (the
    #: :attr:`program` property returns ``None``), forcing schedulers back
    #: onto boundary-state ``handle`` dispatch. Used by the equivalence
    #: tests and dispatch benchmarks; seeded trajectories are identical
    #: either way.
    compiled: bool = True

    @property
    def ports(self) -> Tuple[Port, ...]:
        """The port set P of the model (u,r,d,l in 2D)."""
        return ports_for_dimension(self.dimension)

    @property
    def program(self) -> Optional[CompiledProgram]:
        """The compiled IR of this protocol (see :mod:`repro.core.program`).

        Rule protocols compile eagerly at construction; anything else is
        lowered lazily through a memoizing :class:`MemoProgram` adapter
        that interns observed transitions into the same packed table.
        Returns ``None`` when :attr:`compiled` is switched off.
        """
        if not self.compiled:
            return None
        prog = getattr(self, "_program", None)
        if prog is None:
            prog = MemoProgram(self)
            self._program = prog
        return prog

    # ------------------------------------------------------------------

    def handle(self, view: InteractionView) -> Optional[Update]:
        """Apply ``delta`` to an interaction; ``None`` means ineffective.

        The scheduler presents the pair in both orders, so implementations
        need only match one orientation of each rule.
        """
        raise NotImplementedError

    def is_hot(self, state: State) -> bool:
        """Hint: interactions between two non-hot states are ineffective.

        Must over-approximate: returning True never hurts correctness, only
        speed. The default marks every state hot.
        """
        return True

    def pair_compatible(self, state1: State, state2: State) -> bool:
        """Hint: an interaction between these states may be effective.

        Must over-approximate (False only when *no* rule can apply to the
        unordered state pair, for any ports or bond value).
        """
        return True

    def port_hints(
        self, state1: State, state2: State
    ) -> Optional[FrozenSet[Tuple[Port, Port]]]:
        """Hint: the ordered port pairs under which the state pair may have
        an effective transition; ``None`` means "any ports".

        Must over-approximate. Schedulers use this to skip geometry checks
        for port pairs that cannot possibly match a rule.
        """
        return None

    def is_halted(self, state: State) -> bool:
        """True iff ``state`` belongs to Q_halt (all its rules ineffective)."""
        return False

    def is_output(self, state: State) -> bool:
        """True iff ``state`` belongs to Q_out (or Q_halt for terminating
        protocols); output shapes are induced by these nodes (§3)."""
        return self.is_halted(state)


class RuleProtocol(Protocol):
    """A protocol given by an explicit table of effective rules.

    Parameters
    ----------
    rules:
        The effective transitions. With ``match="unordered"`` (default)
        rules are matched on the interaction as presented and with the two
        sides swapped, since interactions are unordered; a rule set that is
        ambiguous under swapping (two distinct rules matching the same
        unordered interaction with different results) is rejected. With
        ``match="ordered"`` the as-presented orientation takes precedence
        — the initiator/responder convention of population protocols —
        which admits symmetric-state rules (e.g. leader elections between
        identical states) that no unordered table can express.
    initial_state, leader_state:
        Initial states of ordinary nodes and of the optional unique leader.
    halting_states, output_states:
        Q_halt and Q_out.
    dimension:
        2 or 3.
    """

    def __init__(
        self,
        rules: Iterable[Rule],
        initial_state: State = "q0",
        leader_state: Optional[State] = None,
        halting_states: AbstractSet[State] = frozenset(),
        output_states: AbstractSet[State] = frozenset(),
        dimension: int = 2,
        name: str = "rule-protocol",
        hot_states: Optional[Iterable[State]] = None,
        match: str = "unordered",
        drop_ineffective: bool = False,
    ) -> None:
        if match not in ("unordered", "ordered"):
            raise ProtocolError(f"unknown match mode: {match!r}")
        self.dimension = dimension
        self.initial_state = initial_state
        self.leader_state = leader_state
        self.name = name
        self.match = match
        self._halting: FrozenSet[State] = frozenset(halting_states)
        self._output: FrozenSet[State] = frozenset(output_states) | self._halting
        self._table: Dict[RuleLHS, Rule] = {}
        port_set = set(self.ports)
        for rule in rules:
            if not rule.is_effective():
                if drop_ineffective:
                    continue
                raise ProtocolError(f"ineffective rule listed explicitly: {rule!r}")
            if rule.port1 not in port_set or rule.port2 not in port_set:
                raise ProtocolError(
                    f"rule uses port outside the {dimension}D port set: {rule!r}"
                )
            if rule.bond not in (0, 1) or rule.new_bond not in (0, 1):
                raise ProtocolError(f"bond states must be 0/1: {rule!r}")
            for s in (rule.state1, rule.state2):
                if s in self._halting:
                    raise ProtocolError(
                        f"halting state {s!r} appears in an effective rule: {rule!r}"
                    )
            prior = self._table.get(rule.lhs)
            if prior is not None and prior.rhs != rule.rhs:
                raise ProtocolError(
                    f"conflicting rules for one LHS: {prior!r} vs {rule!r}"
                )
            self._table[rule.lhs] = rule
        if hot_states is not None:
            hot = frozenset(hot_states)
            for rule in self._table.values():
                if rule.state1 not in hot and rule.state2 not in hot:
                    raise ProtocolError(
                        f"hot_states misses rule {rule.lhs!r}: neither side is hot"
                    )
            self._hot = hot
        else:
            self._hot = self._compute_hot_cover()
        # Compile to the packed IR. This also performs swap-consistency
        # checking (unordered mode) / precedence resolution (ordered mode)
        # and fixes the canonical state-interning order.
        self._program = compile_rules(
            self._table.values(),
            initial_state=initial_state,
            leader_state=leader_state,
            halting_states=self._halting,
            output_states=self._output,
            hot_states=self._hot,
            ordered=(match == "ordered"),
        )
        # Pair/port indices for scheduler pruning (both orientations).
        self._pairs: Set[FrozenSet[State]] = set()
        self._ports_by_pair: Dict[FrozenSet[State], Set[Tuple[Port, Port]]] = {}
        for rule in self._table.values():
            key = frozenset((rule.state1, rule.state2))
            self._pairs.add(key)
            hints = self._ports_by_pair.setdefault(key, set())
            hints.add((rule.port1, rule.port2))
            hints.add((rule.port2, rule.port1))

    # ------------------------------------------------------------------

    def _compute_hot_cover(self) -> FrozenSet[State]:
        """Greedy vertex cover of the rule LHS state pairs.

        Any set of states covering every effective rule (i.e. every rule has
        an endpoint in the set) is a valid hot set. For leader-driven
        protocols this collapses to the small set of leader states.

        Iteration is fully deterministic (sorted by repr): the chosen cover
        influences the hot scheduler's candidate enumeration order, and
        seeded runs must not depend on hash randomization.
        """
        pairs = sorted(
            {
                tuple(sorted({r.state1, r.state2}, key=repr))
                for r in self._table.values()
            }
        , key=repr)
        cover: set = set()
        remaining = list(pairs)
        while remaining:
            counts: Dict[State, int] = {}
            for p in remaining:
                for s in p:
                    counts[s] = counts.get(s, 0) + 1
            best = max(sorted(counts, key=repr), key=lambda s: counts[s])
            cover.add(best)
            remaining = [p for p in remaining if best not in p]
        return frozenset(cover)

    # ------------------------------------------------------------------

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """The effective rules of the protocol."""
        return tuple(self._table.values())

    @property
    def states(self) -> FrozenSet[State]:
        """All states mentioned by the protocol (a subset of Q)."""
        found = {self.initial_state} | self._halting | self._output
        if self.leader_state is not None:
            found.add(self.leader_state)
        for r in self._table.values():
            found.update((r.state1, r.state2, r.new_state1, r.new_state2))
        return frozenset(found)

    @property
    def size(self) -> int:
        """The size of the protocol: |Q| (as the paper measures protocols)."""
        return len(self.states)

    def handle(self, view: InteractionView) -> Optional[Update]:
        # Both orientations were packed into the table at compile time, so
        # boundary dispatch is two id probes and one int-dict hit.
        space = self._program.space
        s1 = space.get_id(view.state1)
        if s1 is None:
            return None
        s2 = space.get_id(view.state2)
        if s2 is None:
            return None
        return self._program.lookup(
            s1, PORT_INDEX[view.port1], s2, PORT_INDEX[view.port2], view.bond
        )

    def is_hot(self, state: State) -> bool:
        return state in self._hot

    def is_halted(self, state: State) -> bool:
        return state in self._halting

    def is_output(self, state: State) -> bool:
        return state in self._output

    def pair_compatible(self, state1: State, state2: State) -> bool:
        return frozenset((state1, state2)) in self._pairs

    def port_hints(
        self, state1: State, state2: State
    ) -> Optional[FrozenSet[Tuple[Port, Port]]]:
        hints = self._ports_by_pair.get(frozenset((state1, state2)))
        if hints is None:
            return frozenset()
        return frozenset(hints)


class AgentProtocol(Protocol):
    """A protocol whose ``delta`` is a pure handler function.

    The handler receives an :class:`InteractionView` and returns either
    ``None`` (ineffective) or an update ``(state1', state2', bond')``. It
    must be deterministic and must depend only on the view — the same
    locality discipline as a rule table.
    """

    def __init__(
        self,
        handler: Handler,
        initial_state: State = "q0",
        leader_state: Optional[State] = None,
        hot: Optional[Callable[[State], bool]] = None,
        halted: Optional[Callable[[State], bool]] = None,
        output: Optional[Callable[[State], bool]] = None,
        compatible: Optional[Callable[[State, State], bool]] = None,
        dimension: int = 2,
        name: str = "agent-protocol",
    ) -> None:
        self.dimension = dimension
        self.initial_state = initial_state
        self.leader_state = leader_state
        self.name = name
        self._handler = handler
        self._hot = hot
        self._halted = halted
        self._output = output
        self._compatible = compatible

    def handle(self, view: InteractionView) -> Optional[Update]:
        update = self._handler(view)
        if update is None:
            return None
        if len(update) != 3 or update[2] not in (0, 1):
            raise ProtocolError(f"malformed update from handler: {update!r}")
        if (update[0], update[1], update[2]) == (
            view.state1,
            view.state2,
            view.bond,
        ):
            return None  # normalized: identity updates are ineffective
        return update

    def is_hot(self, state: State) -> bool:
        if self._hot is None:
            return True
        return self._hot(state)

    def is_halted(self, state: State) -> bool:
        if self._halted is None:
            return False
        return self._halted(state)

    def is_output(self, state: State) -> bool:
        if self._output is None:
            return self.is_halted(state)
        return self._output(state)

    def pair_compatible(self, state1: State, state2: State) -> bool:
        if self._compatible is None:
            return True
        return self._compatible(state1, state2)


def rules_from_tuples(
    entries: Iterable[Tuple[RuleLHS, RuleRHS]]
) -> Tuple[Rule, ...]:
    """Convenience: build :class:`Rule` objects from paper-style tuples.

    Each entry is ``(((a, p1), (b, p2), c), (a2, b2, c2))``, mirroring the
    notation ``(a, p1), (b, p2), c -> (a', b', c')`` used in the paper.
    """
    rules = []
    for lhs, rhs in entries:
        (a, p1), (b, p2), c = lhs
        a2, b2, c2 = rhs
        rules.append(Rule(a, p1, b, p2, c, a2, b2, c2))
    return tuple(rules)
