"""Columnar state backend: struct-of-arrays mirrors of the dict world.

The interaction engine's dict-of-records representation is the source of
truth; this module maintains *flat integer columns* over it — one slot per
node id for the interned state (``sid``), owning component id (``cid``),
component size, packed cell, and interned orientation — plus per-state
member arrays, all kept in sync **through the existing journals** (the
``World`` change journal for per-node attribute writes, component
``version`` counters for geometry/membership movement). There is no
parallel write path: a mutation that reaches the cache's journals reaches
the columns, and nothing else can move them.

On top of the columns, :class:`BatchContext` rewrites the candidate
layer's three hot kernels as batch operations over whole dirty
neighborhoods:

1. *static-effectiveness filtering* — the PR 4 ``can_fire`` / hot / pair
   indexes applied once per partner *state* with the survivors gathered
   as boolean masks over the member arrays, instead of one bit probe per
   node;
2. *occupancy-collision pruning* — singleton-partner placements are
   resolved by vectorized membership tests against the packed occupancy
   arrays (and, for the hosting orientation, by one per-rotation probe
   that covers every partner of a group at once, since the component's
   placement relative to a single-cell host is fixed within the group);
3. *transition dispatch* — one packed-key table hit per ``(state pair,
   port pair)`` group serves the whole group; per-candidate dispatch
   collapses into array arithmetic feeding the scheduler's canonical
   sort.

The backend needs ``numpy``; without it (or with ``REPRO_COLUMNAR=0`` /
``columnar=False``) every consumer falls back to the pure-Python scalar
path, bit-identical in trajectory, with plain ``array``-module columns
still available for coherence testing.

Packed candidate keys
---------------------

The candidate layer's identity and sort keys are packed ints, built to be
*order-isomorphic* to the historical tuple keys (pinned by
``tests/test_columnar.py``):

* identity: ``nid1 << 37 | port1_rank << 34 | nid2 << 8 | port2_rank << 5
  | rotation_code`` (rotation code 0 = intra);
* sort key: a ``(hi, lo)`` pair — ``hi`` packs ``(nid1, port1_rank, nid2,
  port2_rank, bond)``, ``lo`` packs ``(rotation_code, translation)`` —
  each half fitting an int64 so the cache can keep its canonical order in
  sorted numpy arrays and merge per-event deltas in C instead of
  re-sorting the whole effective list every event.

Port ranks order ports by their string value and rotation codes order
matrices by their tuple form, exactly as the tuple keys compared.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, Optional, Set, Tuple

try:  # pragma: no cover - exercised through both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover - the REPRO_COLUMNAR=0 leg
    _np = None

from repro.geometry.packed import (
    PACKED_ORIGIN,
    orientation_port_deltas,
    packed_rotation,
    packed_rotations_mapping,
    unpack_delta,
)
from repro.geometry.ports import PORTS_3D
from repro.geometry.rotation import ROTATIONS_2D, ROTATIONS_3D
from repro.core.world import Candidate

np = _np  # re-exported: ``None`` means the fallback backend

# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

_FALSEY = {"0", "false", "no", "off"}
_default: Optional[bool] = None


def _env_default() -> bool:
    return os.environ.get("REPRO_COLUMNAR", "1").strip().lower() not in _FALSEY


def columnar_default() -> bool:
    """Whether the columnar backend is on by default for this process.

    ``True`` requires numpy; the ``REPRO_COLUMNAR=0`` environment flag (or
    :func:`set_columnar_default`) forces the pure-Python fallback.
    """
    enabled = _default if _default is not None else _env_default()
    return bool(enabled and np is not None)


def set_columnar_default(enabled: Optional[bool]) -> None:
    """Override the process default (``None`` restores the env rule)."""
    global _default
    _default = enabled


def resolve_columnar(columnar: Optional[bool]) -> bool:
    """Resolve a per-call ``columnar`` option against the process default."""
    if columnar is None:
        return columnar_default()
    return bool(columnar and np is not None)


def backend_name(columnar: Optional[bool] = None) -> str:
    """Human-readable backend a run with this option would use."""
    if resolve_columnar(columnar):
        return "columnar (numpy)"
    if np is None and (columnar or columnar is None and _env_default()):
        return "fallback (pure Python; numpy not installed)"
    return "fallback (pure Python)"


# ----------------------------------------------------------------------
# Canonical rank tables (order-isomorphic to the tuple keys)
# ----------------------------------------------------------------------

#: Port -> rank in string-value order (the order tuple keys compared by).
PORT_RANK: Dict[object, int] = {
    port: rank
    for rank, port in enumerate(sorted(PORTS_3D, key=lambda p: p.value))
}
#: Rank by packed port index (PORTS_3D order), for int-only hot paths.
RANK_OF_INDEX: Tuple[int, ...] = tuple(PORT_RANK[p] for p in PORTS_3D)

_ROTS_CANONICAL = tuple(sorted(ROTATIONS_3D, key=lambda r: r.matrix))

#: Rotation matrix -> code, 1..24 in matrix-tuple order; 0 means "no
#: rotation" (an intra candidate), which sorts first exactly as the empty
#: tuple sorted before every matrix. The 2D group is a subgroup of the
#: 3D one, so a single table serves both dimensions.
ROT_CODE: Dict[tuple, int] = {
    rot.matrix: code for code, rot in enumerate(_ROTS_CANONICAL, start=1)
}
assert all(r.matrix in ROT_CODE for r in ROTATIONS_2D)

#: Orientation matrix -> dense id, and the packed port-delta table
#: indexed ``[orientation_id][port_index]`` (the bitmask-gather source
#: for partner port directions).
ORIENT_ID: Dict[tuple, int] = {
    rot.matrix: i for i, rot in enumerate(_ROTS_CANONICAL)
}
ORIENT_DELTAS = (
    np.array(
        [orientation_port_deltas(rot) for rot in _ROTS_CANONICAL],
        dtype=np.int64,
    )
    if np is not None
    else None
)

# ----------------------------------------------------------------------
# Packed candidate keys
# ----------------------------------------------------------------------

_NID_BITS = 26
NID_LIMIT = 1 << _NID_BITS
K_P2_SHIFT = 5
K_NID2_SHIFT = 8
K_P1_SHIFT = 34
K_NID1_SHIFT = 37
KEY_ROT_MASK = 31

H_P2_SHIFT = 1
H_NID2_SHIFT = 4
H_P1_SHIFT = 30
H_NID1_SHIFT = 33
L_ROT_SHIFT = 48


def _check_nids(nid1: int, nid2: int) -> None:
    if nid1 >= NID_LIMIT or nid2 >= NID_LIMIT:
        raise OverflowError(
            f"node id beyond packed candidate-key range ({NID_LIMIT}); "
            "raise repro.core.columnar._NID_BITS"
        )


def packed_key(cand) -> int:
    """Packed identity key of a canonical candidate (63 bits).

    Injective over ``(nid1, port1, nid2, port2, rotation)`` — the same
    identity the historical tuple key carried.
    """
    _check_nids(cand.nid1, cand.nid2)
    rot = cand.rotation
    return (
        (cand.nid1 << K_NID1_SHIFT)
        | (PORT_RANK[cand.port1] << K_P1_SHIFT)
        | (cand.nid2 << K_NID2_SHIFT)
        | (PORT_RANK[cand.port2] << K_P2_SHIFT)
        | (0 if rot is None else ROT_CODE[rot.matrix])
    )


def key_nid1(key: int) -> int:
    return key >> K_NID1_SHIFT


def key_nid2(key: int) -> int:
    return (key >> K_NID2_SHIFT) & (NID_LIMIT - 1)


def key_is_inter(key: int) -> bool:
    return bool(key & KEY_ROT_MASK)


def pack_trans(t) -> int:
    """Lexicographic image of a translation vector (0 when ``None``)."""
    if t is None:
        return 0
    return ((t.x << 32) + (t.y << 16) + t.z) + PACKED_ORIGIN


#: Port by canonical rank (inverse of PORT_RANK), for key decoding.
PORT_BY_RANK: Tuple[object, ...] = tuple(
    sorted(PORTS_3D, key=lambda p: p.value)
)
#: Rotation by code ``1..24`` (inverse of ROT_CODE), for key decoding.
ROT_BY_CODE: Tuple[object, ...] = _ROTS_CANONICAL

_LO_TRANS_MASK = (1 << L_ROT_SHIFT) - 1


def candidate_from_row(key: int, hi: int, lo: int) -> Candidate:
    """Rebuild the canonical candidate a ``(key, hi, lo)`` row encodes.

    The identity key carries endpoints, ports and the rotation code; the
    sort key carries the bond (``hi`` bit 0) and the packed translation
    (``lo`` low bits). Together they determine the candidate exactly —
    the dense columnar store keeps only these ints and materializes
    :class:`~repro.core.world.Candidate` objects on demand.
    """
    nid1 = key >> K_NID1_SHIFT
    p1 = PORT_BY_RANK[(key >> K_P1_SHIFT) & 7]
    nid2 = (key >> K_NID2_SHIFT) & (NID_LIMIT - 1)
    p2 = PORT_BY_RANK[(key >> K_P2_SHIFT) & 7]
    code = key & KEY_ROT_MASK
    bond = hi & 1
    if code == 0:
        return Candidate(nid1, p1, nid2, p2, bond)
    rot = ROT_BY_CODE[code - 1]
    trans = unpack_delta((lo & _LO_TRANS_MASK) - PACKED_ORIGIN)
    return Candidate(nid1, p1, nid2, p2, bond, rot, trans)


def packed_sort_key(cand) -> Tuple[int, int]:
    """The canonical total order as an ``(hi, lo)`` int64 pair.

    Strictly order-isomorphic to the historical ``candidate_sort_key``
    tuple: ``hi`` compares ``(nid1, port1.value, nid2, port2.value,
    bond)`` and ``lo`` compares ``(rotation.matrix,
    translation.as_tuple())``, with intra candidates (``lo == 0``) first,
    as ``()`` sorted before any matrix tuple.
    """
    _check_nids(cand.nid1, cand.nid2)
    hi = (
        (cand.nid1 << H_NID1_SHIFT)
        | (PORT_RANK[cand.port1] << H_P1_SHIFT)
        | (cand.nid2 << H_NID2_SHIFT)
        | (PORT_RANK[cand.port2] << H_P2_SHIFT)
        | cand.bond
    )
    rot = cand.rotation
    if rot is None:
        return hi, 0
    return hi, (ROT_CODE[rot.matrix] << L_ROT_SHIFT) | pack_trans(
        cand.translation
    )


# ----------------------------------------------------------------------
# The flat columns
# ----------------------------------------------------------------------


class ColumnarIndex:
    """Flat per-node columns mirroring one ``World``, journal-synced.

    Columns are indexed by node id (ids are dense and never reused):
    ``sid`` (interned state), ``cid`` (owning component id), ``csize``
    (size of the owning component), ``cell`` (packed position in the
    component frame), ``orient`` (interned orientation). :meth:`sync`
    folds in everything the journals recorded since the last call:

    * change-journal entries update ``sid`` (the journal names *what*
      moved; the node record says *where to*);
    * component ``version`` movement re-reads the affected component's
      members wholesale (cells, orientations, membership, size);
    * an adopted state space or a truncated journal triggers a full
      rebuild — never a stale column.

    With numpy absent the columns are stdlib ``array('q')`` buffers —
    same contents, no vectorized consumers — so the coherence tests cover
    the sync rule on both backends.
    """

    def __init__(self, world) -> None:
        self._world = world
        self._space = None
        self._cursor = 0
        self._versions: Dict[int, int] = {}
        self._n = 0
        self.sid = self._new_column()
        self.cid = self._new_column()
        self.csize = self._new_column()
        self.cell = self._new_column()
        self.orient = self._new_column()
        #: sid -> sorted member-id array (numpy only; lazy, dropped when
        #: a member enters or leaves the state).
        self._members: Dict[int, object] = {}
        self.syncs = 0
        self.rebuilds = 0

    @staticmethod
    def _new_column():
        if np is not None:
            return np.empty(0, dtype=np.int64)
        return array("q")

    def _grow(self, n: int) -> None:
        if n <= self._n:
            return
        if np is not None:
            cap = max(16, len(self.sid))
            while cap < n:
                cap *= 2
            if cap > len(self.sid):
                for name in ("sid", "cid", "csize", "cell", "orient"):
                    old = getattr(self, name)
                    new = np.full(cap, -1, dtype=np.int64)
                    new[: len(old)] = old
                    setattr(self, name, new)
        else:
            pad = array("q", [-1]) * (n - len(self.sid))
            for name in ("sid", "cid", "csize", "cell", "orient"):
                getattr(self, name).extend(pad)
        self._n = n

    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Fold journalled movement into the columns (cheap when clean)."""
        w = self._world
        self.syncs += 1
        if w.space is not self._space:
            # adopt_space rewrites sids without journalling (it is not a
            # trajectory-visible change) — rebuild from the records.
            self._rebuild()
            return
        dirty = w.changes_since(self._cursor)
        if dirty is None:  # journal truncated under us
            self._rebuild()
            return
        self._cursor = w.change_cursor()
        self._grow(w._next_nid)
        sid_col = self.sid
        members = self._members
        if dirty:
            nodes = w.nodes
            for nid in dirty:
                rec = nodes.get(nid)
                if rec is None:  # pragma: no cover - nodes are never deleted
                    continue
                old = sid_col[nid]
                if old != rec.sid:
                    members.pop(old, None)
                    members.pop(rec.sid, None)
                    sid_col[nid] = rec.sid
        versions = self._versions
        live: Set[int] = set()
        cid_col, csize_col = self.cid, self.csize
        cell_col, orient_col = self.cell, self.orient
        nodes = w.nodes
        for cid, comp in w.components.items():
            live.add(cid)
            if versions.get(cid) == comp.version:
                continue
            versions[cid] = comp.version
            g = w.geometry(comp)
            size = len(g.pos_of)
            for nid, p in g.pos_of.items():
                cid_col[nid] = cid
                csize_col[nid] = size
                cell_col[nid] = p
                orient_col[nid] = ORIENT_ID[nodes[nid].orientation.matrix]
        for cid in [c for c in versions if c not in live]:
            del versions[cid]

    def _rebuild(self) -> None:
        w = self._world
        self.rebuilds += 1
        self._space = w.space
        self._cursor = w.change_cursor()
        self._versions = {}
        self._members.clear()
        self._n = 0
        self._grow(w._next_nid)
        nodes = w.nodes
        for nid, rec in nodes.items():
            self.sid[nid] = rec.sid
        versions = self._versions
        for cid, comp in w.components.items():
            versions[cid] = comp.version
            g = w.geometry(comp)
            size = len(g.pos_of)
            for nid, p in g.pos_of.items():
                self.cid[nid] = cid
                self.csize[nid] = size
                self.cell[nid] = p
                self.orient[nid] = ORIENT_ID[nodes[nid].orientation.matrix]

    # ------------------------------------------------------------------

    def members_array(self, sid: int):
        """Sorted member ids of one interned state as an int64 array."""
        arr = self._members.get(sid)
        if arr is None:
            ids = self._world.by_sid.get(sid, ())
            arr = np.fromiter(ids, dtype=np.int64, count=len(ids))
            arr.sort()
            self._members[sid] = arr
        return arr

    def verify(self, world) -> None:
        """Assert every column equals the dict world (coherence tests)."""
        assert world is self._world
        for nid, rec in world.nodes.items():
            comp = world.components[rec.component_id]
            g = world.geometry(comp)
            assert self.sid[nid] == rec.sid, (nid, "sid")
            assert self.cid[nid] == rec.component_id, (nid, "cid")
            assert self.csize[nid] == comp.size(), (nid, "csize")
            assert self.cell[nid] == g.pos_of[nid], (nid, "cell")
            assert self.orient[nid] == ORIENT_ID[rec.orientation.matrix], (
                nid,
                "orient",
            )
        if np is not None:
            for sid, arr in self._members.items():
                assert list(arr) == sorted(world.by_sid.get(sid, ())), sid


def get_index(world) -> ColumnarIndex:
    """The world's lazily-created columnar index (one per world)."""
    idx = getattr(world, "_columnar_index", None)
    if idx is None:
        idx = ColumnarIndex(world)
        world._columnar_index = idx
    return idx


# ----------------------------------------------------------------------
# Batch candidate generation over the columns
# ----------------------------------------------------------------------

_CELL_MASK = (1 << 16) - 1
_CELL_OFF = 1 << 15


def rotate_cells(rot, cells):
    """Apply one grid rotation to an int64 array of packed cells."""
    m = rot.matrix
    x = ((cells >> 32) & _CELL_MASK) - _CELL_OFF
    y = ((cells >> 16) & _CELL_MASK) - _CELL_OFF
    z = (cells & _CELL_MASK) - _CELL_OFF
    rx = m[0][0] * x + m[0][1] * y + m[0][2] * z + _CELL_OFF
    ry = m[1][0] * x + m[1][1] * y + m[1][2] * z + _CELL_OFF
    rz = m[2][0] * x + m[2][1] * y + m[2][2] * z + _CELL_OFF
    return (rx << 32) | (ry << 16) | rz


def in_sorted(values, sorted_arr):
    """Vectorized membership of int64 ``values`` in a sorted int64 array.

    ``searchsorted`` + one gather — the batch kernels call this with
    thousands of probes per call, where ``np.isin``'s generality (sorting
    both sides per call) dominated the profile.
    """
    n = len(sorted_arr)
    if n == 0:
        return np.zeros(np.shape(values), dtype=bool)
    pos = sorted_arr.searchsorted(values)
    np.minimum(pos, n - 1, out=pos)
    return sorted_arr[pos] == values


#: Bits reserved for the packed cell inside an occupancy tag; the rest
#: holds the dense component index, so one sorted array answers "is this
#: cell occupied *in this component*" for every component at once.
CELL_TAG_SHIFT = 48
#: Components addressable by one tag array (dense index must fit above
#: the cell bits of an int64); far beyond any simulated population.
MAX_TAG_COMPONENTS = 1 << 14


class BatchContext:
    """One refresh's batch-generation state for a (world, protocol) pair.

    Built by the candidate cache only when the columnar backend is active
    *and* the world is bound to an exact compiled program — the regime in
    which the oriented bond-0 hints are a complete static-effectiveness
    filter, so every generated inter candidate is effective and one table
    hit per ``(state pair, port pair)`` group dispatches the whole group.

    The context carries a *global tagged occupancy*: each component gets a
    dense index (rank of its cid), and every node contributes the tag
    ``dense_index << 48 | packed_cell`` to one sorted int64 array. Open-slot
    checks and collision probes against *any* component then become
    ``searchsorted`` membership tests on this single array — the kernels
    batch across all partner components of a whole dirty component at
    once, instead of one numpy call per (node, partner component) pair.

    :meth:`inter_rows` emits, for a batch of dirty nodes, exactly the
    inter entries the scalar path would — as flat ``(keys, his, los,
    update)`` array chunks, never materializing per-candidate Python
    objects (the dense store keeps the ints; ``candidate_from_row``
    rebuilds a :class:`Candidate` only when the scheduler selects one).
    Intra candidates are not handled here: a node has at most ``|ports|``
    of them, and the scalar probe is already minimal.
    """

    __slots__ = (
        "world",
        "protocol",
        "program",
        "idx",
        "dim",
        "_cids",
        "node_tag",
        "occ_tags",
    )

    def __init__(self, world, protocol, program, idx: ColumnarIndex) -> None:
        self.world = world
        self.protocol = protocol
        self.program = program
        self.idx = idx
        self.dim = world.dimension
        n = world._next_nid
        cid_col = idx.cid[:n]
        cids = np.unique(cid_col)
        if len(cids) > MAX_TAG_COMPONENTS:  # pragma: no cover - 2**14 comps
            raise OverflowError("component count beyond occupancy-tag range")
        self._cids = cids
        #: Per-node tag base: dense component index in the high bits.
        self.node_tag = np.searchsorted(cids, cid_col) << CELL_TAG_SHIFT
        #: The global tagged occupancy, sorted.
        self.occ_tags = np.sort(self.node_tag | idx.cell[:n])

    def tag_of_cid(self, cid: int) -> int:
        """The tag base (dense index bits) of one component id."""
        return int(np.searchsorted(self._cids, cid)) << CELL_TAG_SHIFT

    # ------------------------------------------------------------------

    def inter_rows(self, nids, sink) -> None:
        """Emit inter entry rows for a batch of live dirty nodes.

        ``sink`` receives ``(keys, his, los, update)`` array chunks; rows
        are unique within one call except when *both* endpoints of a pair
        are dirty (each side emits it once) — the caller dedups by key,
        which is also how it reproduces the scalar evaluation count.

        Grouping: dirty nodes by component, then by state. The hot /
        pair-can-fire gates run once per state pair (kernel 1); the
        member-array masks below them replace per-node probes.
        """
        idx = self.idx
        world = self.world
        program = self.program
        hot_mask = program.hot_mask
        nid_arr = np.fromiter(nids, dtype=np.int64, count=len(nids))
        my_cids = idx.cid[nid_arr]
        for cid in np.unique(my_cids).tolist():
            dn_comp = nid_arr[my_cids == cid]
            comp = world.components[cid]
            geom = world.geometry(comp)
            my_single = len(geom.pos_of) == 1
            sids = idx.sid[dn_comp]
            for sid in np.unique(sids).tolist():
                dn = dn_comp[sids == sid]
                nid_hot = bool(hot_mask >> sid & 1)
                for partner_sid in world.by_sid:
                    if not (nid_hot or hot_mask >> partner_sid & 1):
                        continue
                    if not program.pair_can_fire(sid, partner_sid):
                        continue
                    members = idx.members_array(partner_sid)
                    if len(members) == 0:
                        continue
                    pcids = idx.cid[members]
                    mine = pcids == cid
                    if mine.any():
                        members = members[~mine]
                        if len(members) == 0:
                            continue
                        pcids = pcids[~mine]
                    guests = pcids > cid
                    g = members[guests]
                    if len(g):
                        self._guests(dn, sid, partner_sid, g, geom, sink)
                    h = members[~guests]
                    if len(h):
                        self._hosts(
                            dn, sid, partner_sid, h, geom, my_single, sink
                        )

    # -- guests: partner components with the larger cid are placed into
    # -- this (dirty) component's frame ---------------------------------

    def _guests(self, dn, sid, partner_sid, members, geom, sink) -> None:
        idx = self.idx
        program = self.program
        dorient = idx.orient[dn]
        dpos = idx.cell[dn]
        my_tag = self.node_tag[dn[0]]
        porient = idx.orient[members]
        ppos = idx.cell[members]
        single = idx.csize[members] == 1
        ptag = self.node_tag[members]
        occ_tags = self.occ_tags
        for p1i, p2i in program.oriented_hints(sid, partner_sid):
            update = program.lookup(sid, p1i, partner_sid, p2i, 0)
            if update is None:  # pragma: no cover - exact hints always hit
                continue
            d1s = ORIENT_DELTAS[dorient, p1i]
            targets = dpos + d1s
            open_ = ~in_sorted(my_tag | targets, occ_tags)
            if not open_.any():
                continue
            d2s = ORIENT_DELTAS[porient, p2i]
            kbase = (
                (RANK_OF_INDEX[p1i] << K_P1_SHIFT)
                | (RANK_OF_INDEX[p2i] << K_P2_SHIFT)
            )
            hbase = (
                (RANK_OF_INDEX[p1i] << H_P1_SHIFT)
                | (RANK_OF_INDEX[p2i] << H_P2_SHIFT)
            )
            for d1 in sorted(set(d1s[open_].tolist())):
                nmask = (d1s == d1) & open_
                gn = dn[nmask]
                gt = targets[nmask]
                for d2 in sorted(set(d2s.tolist())):
                    pmask = d2s == d2
                    for rot in packed_rotations_mapping(d2, -d1, self.dim):
                        code = ROT_CODE[rot.matrix]
                        # Singletons: the only landing cell is the open
                        # target — the collision probe vanishes.
                        ps = pmask & single
                        if ps.any():
                            self._emit_guest(
                                gn, gt, members[ps], ppos[ps], rot, code,
                                kbase, hbase, update, None, None, sink,
                            )
                        pm = pmask & ~single
                        if pm.any():
                            self._emit_guest(
                                gn, gt, members[pm], ppos[pm], rot, code,
                                kbase, hbase, update, geom, ptag[pm], sink,
                            )

    def _emit_guest(
        self, gn, gt, pj, pjpos, rot, code, kbase, hbase, update,
        geom, ptag, sink,
    ) -> None:
        """One (delta-group, rotation) guest block: ``len(gn) × len(pj)``
        placements, each dirty node hosting each partner.

        ``geom is None`` marks the singleton fast path (no probe). For
        multi-cell partners the collision probe runs in the *partner*
        frame via the inverse rotation: the placement collides iff some
        host cell, pulled back by ``rot⁻¹`` and the back-rotated
        translation, lands on the partner's occupancy — which the global
        tag array answers for every (node, partner) pair in one gather.
        """
        # trans[i, j] = target_i - rot(pos_j)
        trans = gt[:, None] - rotate_cells(rot, pjpos)[None, :]
        if geom is not None:
            inv = rot.inverse()
            inv_occ = geom.rotated_array(inv)
            inv_t = rotate_cells(inv, trans + PACKED_ORIGIN) - PACKED_ORIGIN
            probes = (
                (ptag[None, :, None] - inv_t[:, :, None])
                + inv_occ[None, None, :]
            )
            hit = (
                in_sorted(probes.reshape(-1), self.occ_tags)
                .reshape(probes.shape)
                .any(axis=2)
            )
            if hit.all():
                return
            ok = ~hit
        else:
            ok = None
        keys = (
            (gn << K_NID1_SHIFT)[:, None]
            + (pj << K_NID2_SHIFT)[None, :]
            + (kbase | code)
        )
        his = (
            (gn << H_NID1_SHIFT)[:, None]
            + (pj << H_NID2_SHIFT)[None, :]
            + hbase
        )
        los = (code << L_ROT_SHIFT) + trans + PACKED_ORIGIN
        if ok is None:
            sink.append(
                (keys.reshape(-1), his.reshape(-1), los.reshape(-1), update)
            )
        else:
            sink.append((keys[ok], his[ok], los[ok], update))

    # -- hosts: partner components with the smaller cid host, and this
    # -- (dirty) component is placed into their frames ------------------

    def _hosts(
        self, dn, sid, partner_sid, members, geom, my_single, sink
    ) -> None:
        idx = self.idx
        program = self.program
        dorient = idx.orient[dn]
        dpos = idx.cell[dn]
        porient = idx.orient[members]
        pcell = idx.cell[members]
        ptag = self.node_tag[members]
        occ_tags = self.occ_tags
        for p1i, p2i in program.oriented_hints(partner_sid, sid):
            update = program.lookup(partner_sid, p1i, sid, p2i, 0)
            if update is None:  # pragma: no cover - exact hints always hit
                continue
            d1s = ORIENT_DELTAS[porient, p1i]
            gtargets = pcell + d1s
            open_ = ~in_sorted(ptag | gtargets, occ_tags)
            if not open_.any():
                continue
            d2s = ORIENT_DELTAS[dorient, p2i]
            kbase = (
                (RANK_OF_INDEX[p1i] << K_P1_SHIFT)
                | (RANK_OF_INDEX[p2i] << K_P2_SHIFT)
            )
            hbase = (
                (RANK_OF_INDEX[p1i] << H_P1_SHIFT)
                | (RANK_OF_INDEX[p2i] << H_P2_SHIFT)
            )
            for d1 in sorted(set(d1s[open_].tolist())):
                pmask = (d1s == d1) & open_
                pj = members[pmask]
                gt = gtargets[pmask]
                ptag_g = ptag[pmask]
                for d2 in sorted(set(d2s.tolist())):
                    nmask = d2s == d2
                    gn = dn[nmask]
                    for rot in packed_rotations_mapping(d2, -d1, self.dim):
                        code = ROT_CODE[rot.matrix]
                        rpos = rotate_cells(rot, dpos[nmask])
                        # trans[j, i] = target_j - rot(pos_i)
                        trans = gt[:, None] - rpos[None, :]
                        if my_single:
                            # The dirty singleton's only cell lands on the
                            # open target: no collision possible.
                            ok = None
                        else:
                            rocc = geom.rotated_array(rot)
                            probes = (
                                (ptag_g[:, None, None] + trans[:, :, None])
                                + rocc[None, None, :]
                            )
                            hit = (
                                in_sorted(probes.reshape(-1), occ_tags)
                                .reshape(probes.shape)
                                .any(axis=2)
                            )
                            if hit.all():
                                continue
                            ok = ~hit
                        keys = (
                            (pj << K_NID1_SHIFT)[:, None]
                            + (gn << K_NID2_SHIFT)[None, :]
                            + (kbase | code)
                        )
                        his = (
                            (pj << H_NID1_SHIFT)[:, None]
                            + (gn << H_NID2_SHIFT)[None, :]
                            + hbase
                        )
                        los = (code << L_ROT_SHIFT) + trans + PACKED_ORIGIN
                        if ok is None:
                            sink.append(
                                (
                                    keys.reshape(-1),
                                    his.reshape(-1),
                                    los.reshape(-1),
                                    update,
                                )
                            )
                        else:
                            sink.append(
                                (keys[ok], his[ok], los[ok], update)
                            )
