"""Exact sampling helpers shared by schedulers and accelerated simulators.

The uniform random scheduler's raw-step accounting reduces to geometric
waiting times ("how many permissible draws until the first effective
one?"). :func:`geometric_skip` samples that wait exactly, by inverse CDF,
in O(1) — replacing the naive ``while rng.random() >= p`` loop whose cost
is O(1/p) when the effective fraction is tiny.
"""

from __future__ import annotations

import math
import random

from repro.errors import TerminationError


def geometric_from_uniform(u: float, p: float) -> int:
    """Map one uniform draw ``u`` in [0, 1) to a Geometric(p) variable on
    {1, 2, ...} by inverse CDF.

    Split out from :func:`geometric_skip` so callers that must consume
    exactly one RNG draw per event (the scheduler RNG contract; see
    ``repro.core.scheduler``) can draw ``u`` themselves unconditionally.
    """
    if p <= 0.0:
        raise TerminationError("geometric skip with success probability 0")
    if p >= 1.0:
        return 1
    # Inverse CDF of the geometric distribution on {1, 2, ...}.
    return 1 + int(math.log(max(u, 1e-300)) / math.log(1.0 - p))


def geometric_skip(rng: random.Random, p: float) -> int:
    """Sample the number of Bernoulli(p) trials up to and including the
    first success (a Geometric(p) variable on {1, 2, ...}).

    Used by accelerated simulators and the exact schedulers to account for
    the raw scheduler steps spent on ineffective interactions, exactly in
    law, with a single ``rng.random()`` draw.
    """
    if p <= 0.0:
        raise TerminationError("geometric skip with success probability 0")
    if p >= 1.0:
        return 1
    return geometric_from_uniform(rng.random(), p)
