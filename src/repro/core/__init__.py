"""Core execution model: protocols, configurations, schedulers, simulator.

Implements the model of §3: a population of ``n`` finite automata with
ports, an adversary/uniform-random scheduler selecting permissible pairs of
node-ports, and shape configurations evolving through interactions.
"""

from repro.core.program import (
    CompiledProgram,
    MemoProgram,
    StateSpace,
    TransitionTable,
    compile_rules,
)
from repro.core.protocol import (
    AgentProtocol,
    InteractionView,
    Protocol,
    Rule,
    RuleProtocol,
    Update,
)
from repro.core.world import Candidate, Component, NodeRecord, World
from repro.core.candidates import (
    EffectiveCandidateCache,
    candidate_sort_key,
    hot_effective_candidates,
    reference_effective_candidates,
)
from repro.core.sampling import geometric_skip
from repro.core.scheduler import (
    EnumeratingScheduler,
    HotScheduler,
    RejectionScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from repro.core.simulator import RunResult, Simulation, StopReason
from repro.core.inspect import (
    LintReport,
    assert_well_formed,
    format_protocol,
    format_rule,
    lint_protocol,
    reachable_states,
    state_graph,
)
from repro.core.trace import (
    TraceRecorder,
    record_run,
    replay,
    world_from_dict,
    world_to_dict,
)

__all__ = [
    "Protocol",
    "RuleProtocol",
    "AgentProtocol",
    "Rule",
    "Update",
    "InteractionView",
    # compiled IR
    "CompiledProgram",
    "MemoProgram",
    "StateSpace",
    "TransitionTable",
    "compile_rules",
    "World",
    "Component",
    "NodeRecord",
    "Candidate",
    "Scheduler",
    "EnumeratingScheduler",
    "RejectionScheduler",
    "HotScheduler",
    "RoundRobinScheduler",
    "make_scheduler",
    # candidate layer
    "EffectiveCandidateCache",
    "candidate_sort_key",
    "hot_effective_candidates",
    "reference_effective_candidates",
    "geometric_skip",
    "Simulation",
    "RunResult",
    "StopReason",
    # introspection
    "format_rule",
    "format_protocol",
    "reachable_states",
    "lint_protocol",
    "LintReport",
    "assert_well_formed",
    "state_graph",
    # traces and snapshots
    "TraceRecorder",
    "record_run",
    "replay",
    "world_to_dict",
    "world_from_dict",
]
