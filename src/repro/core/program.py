"""Compiled protocol IR: interned states, packed transitions, static indexes.

The paper's Definition 1 presents a protocol as a finite table
``delta : (Q x P) x (Q x P) x {0,1} -> Q x Q x {0,1}``. The friendly
:class:`~repro.core.protocol.Protocol` API keeps ``Q`` as arbitrary
hashables (mostly strings) at the boundary, but the simulator's hot loop —
one ``delta`` lookup per enumerated candidate — should not hash tuples of
strings. This module compiles any protocol down to a small-int IR:

* :class:`StateSpace` — interns states to dense small ints. For rule
  protocols the initial order is *derived from the canonical rule sort*
  (never from dict iteration), so seeded trajectories cannot depend on
  construction order; states first seen at runtime (constructor surgery,
  fault injection) are appended in observation order, which is itself
  deterministic for a seeded run.
* :class:`TransitionTable` — packs each LHS ``(state1, port1, state2,
  port2, bond)`` into **one int key** mapping to the prebuilt RHS tuple.
  Both orientations of every rule are inserted at build time, so dispatch
  is a single int-dict ``get`` with zero tuple allocation; ineffective
  entries are dropped at build time, never re-checked per interaction.
* :class:`CompiledProgram` — the table plus static indexes consulted by
  the candidate layer and all four schedulers: a per-state *hot bitmask*
  and the per-``(state, port, bond)`` *static-effectiveness* index
  (:meth:`CompiledProgram.can_fire`), which prunes candidates that **no**
  rule can ever fire on before any geometry or dispatch work happens.
* :class:`MemoProgram` — the escape hatch for handler-backed protocols
  (:class:`~repro.core.protocol.AgentProtocol` and friends): observed
  transitions are lowered into the same packed table lazily, so repeat
  interactions cost one int-dict hit instead of a handler call. Its
  static indexes are *not* closed-world (``exact = False``), so the
  pruning layer never consults them.

``World`` adopts a program's :class:`StateSpace` (see
``World.adopt_space``) so node records store interned ids internally and
the scheduler's ``evaluate`` fast path reads them with no conversion;
public states cross the boundary only at ``add_*`` / ``state_of`` /
render edges.

The columnar batch kernels (:mod:`repro.core.columnar`) consume the same
compiled artifacts: interned state ids become the per-node ``sid``
column, ``can_fire``'s ``(state, port, bond)`` index becomes a vectorized
static-effectiveness mask, and exact tables let the batch path skip
scalar re-evaluation of inter-component candidates whose oriented hints
already pinned the unique alignment.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import ProtocolError
from repro.geometry.ports import PORT_INDEX, Port

State = Hashable
#: An update in boundary form: ``(new_state1, new_state2, new_bond)``.
Update = Tuple[State, State, int]

#: Bit widths of the packed LHS key. States get 24 bits (16M interned
#: states before overflow — enforced by :meth:`StateSpace.intern`), ports
#: 3 bits (six ports), the bond 1 bit:
#: ``key = s1 << 31 | s2 << 7 | p1 << 4 | p2 << 1 | bond``.
STATE_BITS = 24
MAX_STATES = 1 << STATE_BITS
PORT_BITS = 3

_S2_SHIFT = PORT_BITS + PORT_BITS + 1          # 7
_S1_SHIFT = STATE_BITS + _S2_SHIFT             # 31
_P1_SHIFT = PORT_BITS + 1                      # 4


def pack_lhs(s1: int, p1: int, s2: int, p2: int, bond: int) -> int:
    """Pack one transition LHS into a single int key."""
    return (s1 << _S1_SHIFT) | (s2 << _S2_SHIFT) | (p1 << _P1_SHIFT) | (p2 << 1) | bond


def unpack_lhs(key: int) -> Tuple[int, int, int, int, int]:
    """Inverse of :func:`pack_lhs` (diagnostics and tests)."""
    bond = key & 1
    p2 = (key >> 1) & ((1 << PORT_BITS) - 1)
    p1 = (key >> _P1_SHIFT) & ((1 << PORT_BITS) - 1)
    s2 = (key >> _S2_SHIFT) & (MAX_STATES - 1)
    s1 = key >> _S1_SHIFT
    return s1, p1, s2, p2, bond


def pack_fire(sid: int, p: int, bond: int) -> int:
    """Key of the static-effectiveness index: one endpoint of an LHS."""
    return (sid << (PORT_BITS + 1)) | (p << 1) | bond


class StateSpace:
    """A bijection between protocol states and dense small ints.

    ``intern`` appends unseen states (deterministically, in call order);
    ``get_id`` probes without extending. One space may be shared by the
    compiled program and every world bound to its protocol — ids are only
    compared for identity and used as dict keys, never ordered, so late
    dynamic interning cannot perturb seeded trajectories.
    """

    __slots__ = ("_ids", "states")

    def __init__(self, states: Iterable[State] = ()) -> None:
        self._ids: Dict[State, int] = {}
        self.states: List[State] = []
        for state in states:
            self.intern(state)

    def intern(self, state: State) -> int:
        sid = self._ids.get(state)
        if sid is None:
            sid = len(self.states)
            if sid >= MAX_STATES:
                raise ProtocolError(
                    f"state space overflow: more than {MAX_STATES} states"
                )
            self._ids[state] = sid
            self.states.append(state)
        return sid

    def get_id(self, state: State) -> Optional[int]:
        return self._ids.get(state)

    def decode(self, sid: int) -> State:
        return self.states[sid]

    def __len__(self) -> int:
        return len(self.states)

    def __contains__(self, state: State) -> bool:
        return state in self._ids


def canonical_rule_key(rule) -> tuple:
    """The canonical total order over rules.

    Decides the interning order of :func:`compile_rules` (and hence every
    state id): full LHS and RHS by ``repr`` for states — a total order
    over heterogeneous state types — plus port values and bonds. Never
    hash- or construction-order dependent.
    """
    return (
        repr(rule.state1),
        rule.port1.value,
        repr(rule.state2),
        rule.port2.value,
        rule.bond,
        repr(rule.new_state1),
        repr(rule.new_state2),
        rule.new_bond,
    )


class TransitionTable:
    """The packed ``delta``: one int key per LHS, prebuilt RHS tuples.

    ``lookup`` is the bound ``dict.get`` of the underlying table — the
    whole dispatch is key packing plus that one hit. RHS tuples hold
    *boundary* states (not ids): they are returned to ``World.apply``,
    trace hooks, and tests unchanged, and the (rare, once-per-event)
    write-back interns them again at the ``set_state`` edge.
    """

    __slots__ = ("_table", "lookup", "entries")

    def __init__(self, table: Dict[int, Update]) -> None:
        self._table = table
        self.lookup: Callable[[int], Optional[Update]] = table.get
        self.entries = len(table)

    def get(self, key: int) -> Optional[Update]:
        return self._table.get(key)

    def keys(self):
        return self._table.keys()

    def items(self):
        """Read-only ``(packed key, RHS)`` pairs, in sorted key order.

        The analyzer's iteration surface: sorted keys make every report
        derived from the table deterministic regardless of insertion
        order.
        """
        return ((k, self._table[k]) for k in sorted(self._table))


class ShadowRecord:
    """One orientation-overlap resolution made at compile time.

    ``key`` is the packed LHS both orientations competed for; ``winner``
    and ``loser`` are the RHS updates (boundary states) that were kept and
    suppressed, and ``kind`` says why the winner won: ``"ordered"`` (the
    as-presented orientation takes precedence in an ordered table) or
    ``"self-swap"`` (a rule whose swap is itself, resolved by presentation
    order). The static analyzer reports these and decides whether the
    suppressed orientation could ever have mattered (i.e. whether the LHS
    is abstractly reachable at all).
    """

    __slots__ = ("key", "winner", "loser", "kind")

    def __init__(self, key: int, winner: Update, loser: Update, kind: str) -> None:
        self.key = key
        self.winner = winner
        self.loser = loser
        self.kind = kind

    def __repr__(self) -> str:  # diagnostics only
        return (
            f"ShadowRecord(key={self.key}, winner={self.winner!r}, "
            f"loser={self.loser!r}, kind={self.kind!r})"
        )


class CompiledProgram:
    """A compiled protocol: state space, packed table, static indexes.

    ``exact`` declares the table and indexes *complete*: no transition
    outside the table can ever be effective. Only exact programs feed the
    static-effectiveness pruning layer; lazily-lowered handler programs
    (:class:`MemoProgram`) set ``exact = False`` and the candidate layer
    falls back to the protocol's own over-approximate hints.
    """

    __slots__ = (
        "space", "table", "exact", "rule_count", "hot_mask", "ordered",
        "shadows", "_fire", "_pairs", "_hints",
    )

    def __init__(
        self,
        space: StateSpace,
        table: TransitionTable,
        *,
        exact: bool,
        rule_count: int,
        hot_ids: Iterable[int] = (),
        fire: Iterable[int] = (),
        pairs: Iterable[int] = (),
        hints: Optional[Dict[int, Tuple[Tuple[int, int], ...]]] = None,
        ordered: bool = False,
        shadows: Tuple["ShadowRecord", ...] = (),
    ) -> None:
        self.space = space
        self.table = table
        self.exact = exact
        self.rule_count = rule_count
        self.ordered = ordered
        #: Orientation-overlap diagnostics recorded at build time (ordered
        #: tables and self-swap resolutions); see :class:`ShadowRecord`.
        self.shadows = shadows
        mask = 0
        for sid in hot_ids:
            mask |= 1 << sid
        self.hot_mask = mask
        self._fire: FrozenSet[int] = frozenset(fire)
        self._pairs: FrozenSet[int] = frozenset(pairs)
        self._hints: Dict[int, Tuple[Tuple[int, int], ...]] = hints or {}

    # -- dispatch ------------------------------------------------------

    def lookup(self, s1: int, p1: int, s2: int, p2: int, bond: int) -> Optional[Update]:
        """One packed-int dict hit; ``None`` means ineffective."""
        return self.table.lookup(
            (s1 << _S1_SHIFT) | (s2 << _S2_SHIFT) | (p1 << _P1_SHIFT) | (p2 << 1) | bond
        )

    # -- static indexes (meaningful only when ``exact``) ---------------

    def is_hot_id(self, sid: int) -> bool:
        return bool(self.hot_mask >> sid & 1)

    def can_fire(self, sid: int, p: int, bond: int) -> bool:
        """Static effectiveness: some rule has ``(state, port, bond)`` on
        one side of its LHS. ``False`` proves no rule can ever fire on a
        candidate presenting this endpoint."""
        return ((sid << (PORT_BITS + 1)) | (p << 1) | bond) in self._fire

    def pair_can_fire(self, sid1: int, sid2: int) -> bool:
        """Some rule mentions the unordered state pair on its LHS."""
        if sid1 > sid2:
            sid1, sid2 = sid2, sid1
        return ((sid1 << STATE_BITS) | sid2) in self._pairs

    def oriented_hints(self, sid1: int, sid2: int) -> Tuple[Tuple[int, int], ...]:
        """The ordered port-index pairs under which ``(state1, state2)``
        can have an effective bond-0 transition, in this orientation.

        Finer than ``Protocol.port_hints`` (which is unordered-symmetric):
        a hint pair appears only if a table entry exists for exactly this
        orientation, so inter-component geometry probes skip the mirror
        half outright. Empty when no bond-0 rule touches the pair.
        """
        return self._hints.get((sid1 << STATE_BITS) | sid2, ())

    def iter_entries(self):
        """Read-only iteration over the packed table, decoded and sorted.

        Yields ``(s1, p1, s2, p2, bond, rhs)`` tuples — interned state ids,
        port indexes, the bond flag, and the boundary-state RHS — one per
        packed orientation, in sorted key order. This is the analyzer's
        view of the IR (:mod:`repro.analysis.protocol`); it never exposes
        the mutable table itself.
        """
        for key, rhs in self.table.items():
            s1, p1, s2, p2, bond = unpack_lhs(key)
            yield s1, p1, s2, p2, bond, rhs

    def describe(self) -> str:
        hot = sorted(
            (repr(self.space.decode(sid)) for sid in range(len(self.space))
             if self.hot_mask >> sid & 1),
        )
        return (
            f"compiled: {len(self.space)} states, {self.rule_count} rules "
            f"({self.table.entries} packed orientations); "
            f"hot states: {{{', '.join(hot)}}}"
        )


def compile_rules(
    rules: Iterable,
    *,
    initial_state: State,
    leader_state: Optional[State] = None,
    halting_states: Iterable[State] = (),
    output_states: Iterable[State] = (),
    hot_states: Iterable[State] = (),
    ordered: bool = False,
) -> CompiledProgram:
    """Compile a rule table into an exact :class:`CompiledProgram`.

    States are interned in canonical-rule-sort order (then the boundary
    states, sorted by ``repr``). Ineffective rules are dropped here, at
    build time. Duplicate LHSs with different RHSs raise
    :class:`ProtocolError` naming both rules; with ``ordered=False``
    (unordered matching) a rule and the swap of another rule conflict the
    same way unless their results mirror, while ``ordered=True`` gives the
    as-presented orientation precedence (the initiator/responder
    convention) and fills missing swapped orientations with the mirror.
    """
    canonical = sorted(rules, key=canonical_rule_key)
    space = StateSpace()
    for rule in canonical:
        space.intern(rule.state1)
        space.intern(rule.state2)
        space.intern(rule.new_state1)
        space.intern(rule.new_state2)
    for state in sorted(
        {initial_state}
        | ({leader_state} if leader_state is not None else set())
        | set(halting_states)
        | set(output_states)
        | set(hot_states),
        key=repr,
    ):
        space.intern(state)

    effective = [r for r in canonical if r.is_effective()]
    table: Dict[int, Update] = {}
    origin: Dict[int, object] = {}
    shadows: List[ShadowRecord] = []

    def insert(key: int, rhs: Update, rule, presented: bool) -> None:
        prior = table.get(key)
        if prior is None:
            table[key] = rhs
            origin[key] = rule
            return
        if prior != rhs:
            if not presented and (ordered or origin[key] is rule):
                # Ordered mode: the presented orientation takes precedence.
                # Unordered mode: a rule that is its *own* swap (identical
                # state and port on both sides) resolves by presentation
                # order, as the boundary table always has. Either way the
                # suppressed orientation is recorded for the analyzer.
                shadows.append(
                    ShadowRecord(
                        key,
                        prior,
                        rhs,
                        "ordered" if origin[key] is not rule else "self-swap",
                    )
                )
                return
            raise ProtocolError(
                f"conflicting rules for one LHS: {origin[key]!r} vs {rule!r}"
                + ("" if presented else " (swapped orientation)")
            )

    # Presented orientations first: in ordered mode they must win over any
    # mirrored fill, matching the handler convention of trying the pair as
    # given before swapping.
    for rule in effective:
        key = pack_lhs(
            space.intern(rule.state1), PORT_INDEX[rule.port1],
            space.intern(rule.state2), PORT_INDEX[rule.port2], rule.bond,
        )
        insert(key, (rule.new_state1, rule.new_state2, rule.new_bond), rule, True)
    for rule in effective:
        key = pack_lhs(
            space.intern(rule.state2), PORT_INDEX[rule.port2],
            space.intern(rule.state1), PORT_INDEX[rule.port1], rule.bond,
        )
        insert(key, (rule.new_state2, rule.new_state1, rule.new_bond), rule, False)

    fire: set = set()
    pairs: set = set()
    hints: Dict[int, List[Tuple[int, int]]] = {}
    for key in table:
        s1, p1, s2, p2, bond = unpack_lhs(key)
        fire.add(pack_fire(s1, p1, bond))
        fire.add(pack_fire(s2, p2, bond))
        a, b = (s1, s2) if s1 <= s2 else (s2, s1)
        pairs.add((a << STATE_BITS) | b)
        if bond == 0:
            hints.setdefault((s1 << STATE_BITS) | s2, []).append((p1, p2))
    hot_ids = [space.intern(s) for s in hot_states]
    return CompiledProgram(
        space,
        TransitionTable(table),
        exact=True,
        rule_count=len(effective),
        hot_ids=hot_ids,
        fire=fire,
        pairs=pairs,
        hints={k: tuple(sorted(set(v))) for k, v in hints.items()},
        ordered=ordered,
        shadows=tuple(sorted(shadows, key=lambda s: s.key)),
    )


class MemoProgram(CompiledProgram):
    """Lazily lowers a handler-backed protocol into the packed table.

    Each distinct packed LHS is evaluated through the protocol's
    ``handle`` exactly once (including the identity-update normalization,
    so effectiveness is never re-checked per interaction); the observed
    update — or ineffectiveness — is memoized under the same int key the
    exact table uses. ``exact`` stays ``False``: the table only records
    what has been *observed*, so the static pruning layer must not treat
    absence as impossibility.
    """

    __slots__ = ("_protocol", "_memo", "_ports")

    def __init__(self, protocol) -> None:
        super().__init__(
            StateSpace(), TransitionTable({}), exact=False, rule_count=0
        )
        self._protocol = protocol
        self._memo: Dict[int, Optional[Update]] = {}
        # Port objects by packed index, for reconstructing boundary views.
        self._ports: Tuple[Port, ...] = tuple(PORT_INDEX)

    def lookup(self, s1: int, p1: int, s2: int, p2: int, bond: int) -> Optional[Update]:
        key = (s1 << _S1_SHIFT) | (s2 << _S2_SHIFT) | (p1 << _P1_SHIFT) | (p2 << 1) | bond
        memo = self._memo
        if key in memo:
            return memo[key]
        from repro.core.protocol import InteractionView

        decode = self.space.states
        update = self._protocol.handle(
            InteractionView(
                decode[s1], self._ports[p1], decode[s2], self._ports[p2], bond
            )
        )
        memo[key] = update
        if update is not None:
            self.rule_count += 1
        return update

    def describe(self) -> str:
        return (
            "compiled lazily from a handler: "
            f"{len(self.space)} states and {self.rule_count} effective "
            "transitions observed so far (table grows as interactions occur)"
        )
