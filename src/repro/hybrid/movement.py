"""Movement rules and the hybrid simulation loop (§8's Nubot combination).

The active primitive is the *leaf rotation*: when the scheduler selects an
interaction across an active bond whose endpoints match a movement rule,
and the moving endpoint is a leaf (degree 1), the leaf swings 90° about its
neighbor into the adjacent cell — provided that cell is free, else the rule
is not applicable (Nubot's blocked moves). The node's orientation rotates
with it, so its bonded port keeps facing the pivot; the pivot's bond port
is re-derived from the new geometry.

Everything else — which pairs meet, and when — remains the passive
uniform-random scheduler of §3: the model is genuinely hybrid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.candidates import EffectiveCandidateCache
from repro.core.protocol import Protocol, State, Update
from repro.core.scheduler import evaluate
from repro.core.simulator import TraceHook, notify_simulation_observers
from repro.core.world import Candidate, World, bond_of, bond_sort_key
from repro.errors import SimulationError
from repro.geometry.ports import port_facing
from repro.geometry.rotation import ROTATIONS_2D, Rotation
from repro.geometry.vec import Vec

#: 90-degree rotations about z: counter-clockwise and clockwise.
_CCW = next(r for r in ROTATIONS_2D if r.apply(Vec(1, 0)) == Vec(0, 1))
_CW = _CCW.inverse()


def _leaf_bond(world: World, nid: int):
    """The unique bond of a degree-1 node, or ``None``."""
    comp = world.component_of(nid)
    bonds = [b for b in comp.bonds if any(x == nid for x, _ in b)]
    if len(bonds) != 1:
        return None
    return bonds[0]


def rotate_leaf(world: World, leaf: int, clockwise: bool) -> bool:
    """Swing a degree-1 node 90° about its unique bonded neighbor.

    Returns False (and changes nothing) when the target cell is occupied
    within the component — the blocked-move convention. Raises
    :class:`SimulationError` when ``leaf`` is not a degree-1 node of a 2D
    world.
    """
    if world.dimension != 2:
        raise SimulationError("leaf rotation is defined for the 2D model")
    bond = _leaf_bond(world, leaf)
    if bond is None:
        raise SimulationError(f"node {leaf} is not a leaf (degree != 1)")
    (a, pa), (b, pb) = tuple(bond)
    pivot = b if a == leaf else a
    comp = world.component_of(leaf)
    rec_leaf = world.nodes[leaf]
    rec_pivot = world.nodes[pivot]
    turn: Rotation = _CW if clockwise else _CCW
    old_pos = rec_leaf.pos
    new_pos = rec_pivot.pos + turn.apply(old_pos - rec_pivot.pos)
    if new_pos in comp.cells:
        return False
    # Move the leaf: cells map, position, and orientation (the node turns
    # with the swing, so its own bond port keeps facing the pivot).
    del comp.cells[old_pos]
    comp.cells[new_pos] = leaf
    rec_leaf.pos = new_pos
    rec_leaf.orientation = turn.compose(rec_leaf.orientation)
    # Re-derive the bond's port pair from the new geometry.
    comp.bonds.discard(bond)
    leaf_port = port_facing(rec_leaf.orientation, rec_pivot.pos - new_pos)
    pivot_port = port_facing(rec_pivot.orientation, new_pos - rec_pivot.pos)
    comp.bonds.add(bond_of(leaf, leaf_port, pivot, pivot_port))
    # Journal the swing as a fine-grained world delta (bumping the
    # version): the vacated/occupied cell pair plus the pivot, whose bond
    # port was re-derived above — incremental candidate caches then prune
    # the swing's exact fallout instead of sweeping the whole component.
    world.note_move(comp, leaf, old_pos, new_pos, also_dirty=(pivot,))
    return True


@dataclass(frozen=True)
class MovementRule:
    """An active-motion rule: a bonded (leaf, pivot) state pair swings.

    When an interaction selects an active bond whose leaf endpoint is in
    ``leaf_state`` and whose other endpoint is in ``pivot_state``, the leaf
    rotates 90° (``clockwise`` or not) about the pivot and both nodes adopt
    their new states.
    """

    leaf_state: State
    pivot_state: State
    new_leaf_state: State
    new_pivot_state: State
    clockwise: bool = True


class MovementProtocol(Protocol):
    """A hybrid protocol: ordinary δ rules plus movement rules.

    ``base`` (optional) supplies the passive part (any :class:`Protocol`);
    movement rules supply the active part. The two candidate sets are
    merged by :class:`HybridSimulation` with the uniform law over all
    applicable interactions.
    """

    def __init__(
        self,
        movement_rules: List[MovementRule],
        base: Optional[Protocol] = None,
        initial_state: State = "q0",
        leader_state: Optional[State] = None,
        name: str = "movement-protocol",
    ) -> None:
        self.dimension = 2
        self.movement_rules = list(movement_rules)
        self.base = base
        self.initial_state = initial_state
        self.leader_state = leader_state
        self.name = name
        self._by_pair: Dict[Tuple[State, State], MovementRule] = {}
        for rule in self.movement_rules:
            key = (rule.leaf_state, rule.pivot_state)
            if key in self._by_pair:
                raise SimulationError(
                    f"two movement rules for the pair {key!r}"
                )
            self._by_pair[key] = rule

    def handle(self, view) -> Optional[Update]:
        if self.base is not None:
            return self.base.handle(view)
        return None

    def movement_rule_for(
        self, leaf_state: State, pivot_state: State
    ) -> Optional[MovementRule]:
        return self._by_pair.get((leaf_state, pivot_state))

    def is_hot(self, state: State) -> bool:
        if any(
            state in (r.leaf_state, r.pivot_state) for r in self.movement_rules
        ):
            return True
        if self.base is not None:
            return self.base.is_hot(state)
        return False


@dataclass
class HybridSimulation:
    """Uniform-random execution over passive *and* active interactions.

    Each step takes the effective passive candidates (the base protocol's
    δ, maintained incrementally by an
    :class:`~repro.core.candidates.EffectiveCandidateCache` — leaf swings
    are journalled as *move* deltas, so the cache prunes exactly the
    swing's fallout: the swung leaf and pivot, entries colliding with the
    newly occupied cell, and placements unblocked by the vacated one,
    never the whole component) plus the applicable movement candidates
    (bonded leaf/pivot pairs matching a movement rule whose swing target
    is free) and selects uniformly among their union — the natural
    extension of the §3 uniform scheduler to the hybrid rule set.
    """

    world: World
    protocol: MovementProtocol
    seed: Optional[int] = None
    trace: Optional[TraceHook] = None

    events: int = 0
    moves: int = 0
    stabilized: bool = False
    _rng: random.Random = field(init=False, repr=False)
    _cache: EffectiveCandidateCache = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._cache = EffectiveCandidateCache()
        program = self.protocol.program
        if program is not None:
            self.world.adopt_space(program.space)
        # Offer this run to any active recording (repro.trace.record): the
        # writer binds through the same world/seed/trace surface as a core
        # Simulation. Passive picks go through the TraceHook; leaf swings
        # reach the writer's move seam via the hook's ``trace_writer``
        # attribute — a plain hook without that attribute sees passive
        # events only.
        notify_simulation_observers(self)

    def _movement_candidates(self) -> List[Tuple[int, MovementRule]]:
        out: List[Tuple[int, MovementRule]] = []
        for comp in self.world.components.values():
            degree: Dict[int, int] = {}
            for bond in comp.bonds:
                for nid, _port in bond:
                    degree[nid] = degree.get(nid, 0) + 1
            for bond in sorted(comp.bonds, key=bond_sort_key):
                (a, _pa), (b, _pb) = tuple(bond)
                for leaf, pivot in ((a, b), (b, a)):
                    if degree.get(leaf) != 1:
                        continue
                    rule = self.protocol.movement_rule_for(
                        self.world.state_of(leaf), self.world.state_of(pivot)
                    )
                    if rule is None:
                        continue
                    turn = _CW if rule.clockwise else _CCW
                    rec_leaf = self.world.nodes[leaf]
                    rec_pivot = self.world.nodes[pivot]
                    target = rec_pivot.pos + turn.apply(
                        rec_leaf.pos - rec_pivot.pos
                    )
                    if target in comp.cells:
                        continue  # blocked move
                    out.append((leaf, rule))
        return out

    def step(self) -> bool:
        """One uniform draw over passive + active candidates."""
        passive: List[Tuple[Candidate, Update]] = self._cache.refresh(
            self.world, self.protocol, evaluate
        )
        active = self._movement_candidates()
        total = len(passive) + len(active)
        if total == 0:
            self.stabilized = True
            return False
        pick = self._rng.randrange(total)
        if pick < len(passive):
            cand, update = passive[pick]
            self.world.apply(cand, update)
            self.events += 1
            if self.trace is not None:
                self.trace(self.events, cand, update, self.world)
        else:
            leaf, rule = active[pick - len(passive)]
            moved = rotate_leaf(self.world, leaf, rule.clockwise)
            if not moved:  # pragma: no cover - filtered as blocked above
                return True
            pivot_bond = _leaf_bond(self.world, leaf)
            assert pivot_bond is not None
            (a, _), (b, _) = tuple(pivot_bond)
            pivot = b if a == leaf else a
            self.world.set_state(leaf, rule.new_leaf_state)
            self.world.set_state(pivot, rule.new_pivot_state)
            self.moves += 1
            self.events += 1
            writer = getattr(self.trace, "trace_writer", None)
            if writer is not None:
                writer.on_move(
                    self.events,
                    leaf,
                    pivot,
                    rule.clockwise,
                    rule.new_leaf_state,
                    rule.new_pivot_state,
                    self.world,
                )
        return True

    def run(self, max_events: int = 100_000) -> int:
        """Run until no candidate of either kind remains; returns events."""
        for _ in range(max_events):
            if not self.step():
                break
        return self.events


def walker_protocol() -> MovementProtocol:
    """A two-node *walker*: protocol-controlled locomotion from leaf swings.

    The dimer alternates roles: the mover (``M1``) cartwheels clockwise
    over the pivot (``P``) in two quarter-swings (via ``M2``), landing one
    lattice step beyond it; then the roles swap and the other endpoint
    cartwheels. Each four-interaction cycle translates the dimer by two
    cells — motion that the purely passive model cannot produce, since a
    passive component's internal geometry is rigid forever.
    """
    rules = [
        MovementRule("M1", "P", "M2", "P", clockwise=True),
        MovementRule("M2", "P", "P", "M1", clockwise=True),
    ]
    return MovementProtocol(rules, initial_state="P", name="walker")


def make_walker_world() -> Tuple[World, int, int]:
    """A world holding one walker dimer; returns (world, mover, pivot)."""
    world = World(dimension=2)
    nids = world.add_component_from_cells(
        {Vec(0, 0): "M1", Vec(1, 0): "P"}
    )
    return world, nids[Vec(0, 0)], nids[Vec(1, 0)]
