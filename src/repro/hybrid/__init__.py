"""Hybrid active/passive mobility (the §8 Nubot-style future-work model).

The paper's conclusions propose *"a hybrid model combining active mobility
controlled by the protocol and passive mobility controlled by the
environment. For example it could be a combination of the Nubot model and
the model presented in this work."*

This subpackage prototypes exactly that combination:

* passive mobility is unchanged — the scheduler still brings node-port
  pairs into contact exactly as in §3;
* active mobility adds Nubot's *movement rule* primitive, restricted to
  the tractable leaf case: an interaction across an active bond may rotate
  a degree-1 node 90° about its unique neighbor into a free adjacent cell
  (the "monomer rotation" of [WCG+13], without sub-assembly pushing).

Even this single primitive yields protocol-controlled locomotion: the
:func:`walker_protocol` dimer alternates which endpoint pivots and thereby
*walks* across the grid — active motion the passive §3 model cannot
express at all (a passive component's internal geometry is forever rigid).
"""

from repro.hybrid.movement import (
    HybridSimulation,
    MovementProtocol,
    MovementRule,
    rotate_leaf,
    walker_protocol,
)

__all__ = [
    "MovementRule",
    "MovementProtocol",
    "HybridSimulation",
    "rotate_leaf",
    "walker_protocol",
]
