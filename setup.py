"""Legacy setup shim for offline editable installs (no wheel available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Terminating distributed construction of shapes and patterns in a "
        "fair solution of automata (Michail 2015) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    # The core library is dependency-free; numpy enables the columnar
    # candidate backend (repro.core.columnar), which falls back to the
    # pure-Python path when absent.
    extras_require={"fast": ["numpy"]},
)
