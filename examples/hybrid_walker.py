"""Active mobility: a protocol-controlled walker (the §8 hybrid model).

The paper's passive model never lets a component change its own geometry —
all motion is the environment's. Combining it with Nubot-style movement
rules (leaf rotations) yields a two-node machine that *walks*: the mover
cartwheels over the pivot in two quarter-swings, the roles swap, and the
dimer translates two cells per four interactions.

    python examples/hybrid_walker.py
"""

from repro import HybridSimulation, MovementProtocol, walker_protocol
from repro.hybrid.movement import make_walker_world


def track(protocol, label: str, steps: int = 24) -> None:
    world, mover, pivot = make_walker_world()
    sim = HybridSimulation(world, protocol, seed=0)
    print(f"--- {label} ---")
    trace = []
    for _ in range(steps):
        cells = sorted(
            (world.nodes[mover].pos, world.nodes[pivot].pos),
            key=lambda c: (c.x, c.y),
        )
        trace.append(cells)
        if not sim.step():
            break
    # Draw the dimer's journey on one strip (rows y = 1, 0).
    max_x = max(c.x for pair in trace for c in pair) + 1
    for y in (1, 0):
        row = []
        for x in range(max_x + 1):
            visited = any(
                c.x == x and c.y == y for pair in trace for c in pair
            )
            here = any(
                c.x == x and c.y == y
                for c in (world.nodes[mover].pos, world.nodes[pivot].pos)
            )
            row.append("O" if here else ("." if visited else " "))
        print("".join(row))
    dx = min(world.nodes[mover].pos.x, world.nodes[pivot].pos.x)
    print(f"events: {sim.events}, moves: {sim.moves}, displacement: +{dx}\n")


if __name__ == "__main__":
    track(walker_protocol(), "walker: active movement rules")
    track(
        MovementProtocol([], name="inert"),
        "same dimer, no movement rules (passive model): frozen",
    )
