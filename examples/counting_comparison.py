"""Compare the paper's counting protocols (§5) on one population.

Runs (a) Counting-Upper-Bound with a leader, (b) Protocol 3 with unique
ids and no leader, and (c) the anonymous window protocol that Conjecture 1
predicts must fail — and prints their estimates and costs side by side.

(a) and (b) run as registered scenarios of the experiment layer — the
same specs as ``repro run counting`` / ``repro run uid-counting``; (c)
drives the library helper directly (an experiment over a conjecture's
consequence, not a registered workload).

    python examples/counting_comparison.py [n]
"""

import sys

from repro.experiments import run_named
from repro.population.leaderless import early_termination_experiment


def main(n: int = 200) -> None:
    print(f"population size n = {n}\n")

    res = run_named("counting", n=n, b=4, trials=1, seed=0)
    estimate = int(res.metrics["mean_estimate"])
    print("Counting-Upper-Bound (leader, Theorem 1):")
    print(
        f"  estimate r0 = {estimate} ({estimate / n:.0%} of n), "
        f"upper bound 2 r0 = {2 * estimate}, "
        f"raw interactions = {res.raw_steps}"
    )

    uid = run_named("uid-counting", n=n, b=4, seed=0)
    print("\nProtocol 3 (unique ids, no leader, Theorem 3):")
    print(
        f"  halter uid = {uid.metrics['halter_uid']} "
        f"(max: {uid.metrics['halter_is_max']}), "
        f"output = {uid.metrics['output']} "
        f"(>= n: {uid.metrics['output_is_upper_bound']}), "
        f"interactions = {uid.events}"
    )

    anon = early_termination_experiment(n, b=2, trials=20, seed=0)
    print("\nAnonymous window protocol (Conjecture 1's consequence):")
    print(
        f"  early-termination rate = {anon.early_termination_rate:.0%}, "
        f"relative count error = {anon.mean_relative_count_error:.0%}"
    )
    print("  (anonymous nodes terminate fast and learn nothing about n)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
