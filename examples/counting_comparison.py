"""Compare the paper's counting protocols (§5) on one population.

Runs (a) Counting-Upper-Bound with a leader, (b) Protocol 3 with unique
ids and no leader, and (c) the anonymous window protocol that Conjecture 1
predicts must fail — and prints their estimates and costs side by side.

    python examples/counting_comparison.py [n]
"""

import sys

from repro import CountingUpperBound
from repro.population.counting_uid import run_uid_counting
from repro.population.leaderless import early_termination_experiment


def main(n: int = 200) -> None:
    print(f"population size n = {n}\n")

    res = CountingUpperBound(n, b=4, seed=0).run()
    print("Counting-Upper-Bound (leader, Theorem 1):")
    print(
        f"  estimate r0 = {res.r0} ({res.r0 / n:.0%} of n), "
        f"upper bound 2 r0 = {res.upper_bound}, "
        f"raw interactions = {res.raw_interactions}"
    )

    uid = run_uid_counting(n, b=4, seed=0)
    print("\nProtocol 3 (unique ids, no leader, Theorem 3):")
    print(
        f"  halter uid = {uid.halter_uid} (max: {uid.halter_is_max}), "
        f"output = {uid.output} (>= n: {uid.output_is_upper_bound}), "
        f"interactions = {uid.interactions}"
    )

    anon = early_termination_experiment(n, b=2, trials=20, seed=0)
    print("\nAnonymous window protocol (Conjecture 1's consequence):")
    print(
        f"  early-termination rate = {anon.early_termination_rate:.0%}, "
        f"relative count error = {anon.mean_relative_count_error:.0%}"
    )
    print("  (anonymous nodes terminate fast and learn nothing about n)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
