"""Protocol debugging workflow: inspect, trace, replay, snapshot.

A downstream user designing their own rule table gets four tools:

1. ``format_protocol`` — the table in the paper's notation;
2. ``lint_protocol`` — unreachable states and dead rules;
3. ``record_run`` / ``replay`` — a JSON trace of every applied interaction
   that replays onto a fresh world (regression artifacts);
4. ``world_to_dict`` — full configuration snapshots.

    python examples/protocol_debugging.py
"""

import json

from repro import (
    Rule,
    RuleProtocol,
    World,
    format_protocol,
    lint_protocol,
    record_run,
    replay,
    world_to_dict,
)
from repro.geometry.ports import Port


def main() -> None:
    # A deliberately sloppy protocol: the paper's simplified line rule,
    # plus a dead rule whose states can never arise.
    rules = [
        Rule("L", Port.RIGHT, "q0", Port.LEFT, 0, "q1", "L", 1),
        Rule("ghost", Port.UP, "phantom", Port.DOWN, 0, "q1", "q1", 1),
    ]
    protocol = RuleProtocol(
        rules, initial_state="q0", leader_state="L", name="sloppy-line"
    )

    print("--- the table, paper-style ---")
    print(format_protocol(protocol))

    print("\n--- lint ---")
    report = lint_protocol(protocol)
    for state in report.unreachable_states:
        print(f"unreachable state: {state!r}")
    for rule in report.dead_rules:
        print(f"dead rule: ({rule.state1}, ...) -> never fires")
    for note in report.notes:
        print(f"note: {note}")

    print("\n--- record a run, replay it, compare snapshots ---")
    world = World.of_free_nodes(6, protocol, leaders=1)
    recorder = record_run(world, protocol, seed=42)
    trace_json = json.dumps(recorder.to_list())
    print(f"recorded {len(recorder.events)} events "
          f"({len(trace_json)} bytes of JSON)")

    fresh = World.of_free_nodes(6, protocol, leaders=1)
    replay(fresh, json.loads(trace_json), check_invariants=True)
    identical = world_to_dict(fresh) == world_to_dict(world)
    print(f"replayed onto a fresh world: configurations identical = {identical}")


if __name__ == "__main__":
    main()
