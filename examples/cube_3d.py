"""The 3D model: build an m x m x m cube and the §6.4.1 parallel slab.

Cube-Knowing-n extends §6.2's Square-Knowing-n to three dimensions: each
slab is assembled by the scheduler-driven seed/replica line pipeline, then
the slabs stack along z. The second part runs Theorem 5's 3D parallel
construction: a star shape computed with every pixel's machine running on
its own z-line memory.

Both workloads run as registered scenarios of the experiment layer
(``repro run cube -m 3`` / ``repro run parallel-3d --d 7`` on the CLI is
the identical spec).

    python examples/cube_3d.py
"""

from repro.experiments import run_named


def build_cube(m: int = 3, seed: int = 0) -> None:
    n = m**3
    print(f"--- Cube-Knowing-n: {m}x{m}x{m} cube on {n} nodes ---")
    result = run_named("cube", m=m, seed=seed)
    metrics = result.metrics
    print(
        f"{m} slabs built by the scheduler-driven 2D pipeline "
        f"({metrics['scheduler_events']} scheduler events), stacked by "
        f"the leader ({metrics['leader_interactions']} accounted interactions)"
    )
    print(result.renders["cube"])


def parallel_star(d: int = 7) -> None:
    print(f"\n--- Theorem 5 / §6.4.1: parallel star on a {d}x{d} square ---")
    result = run_named("parallel-3d", shape="star", d=d)
    metrics = result.metrics
    print(
        f"population n = k*d^2 = {metrics['n']} (k = {metrics['k']}); "
        f"parallel interactions {metrics['parallel_interactions']} vs "
        f"sequential {metrics['sequential_interactions']} "
        f"(speedup {metrics['speedup']:.1f}x)"
    )
    print(result.renders["shape"])


if __name__ == "__main__":
    build_cube()
    parallel_star()
