"""The 3D model: build an m x m x m cube and the §6.4.1 parallel slab.

Cube-Knowing-n extends §6.2's Square-Knowing-n to three dimensions: each
slab is assembled by the scheduler-driven seed/replica line pipeline, then
the slabs stack along z. The second part runs Theorem 5's 3D parallel
construction: a star shape computed with every pixel's machine running on
its own z-line memory.

    python examples/cube_3d.py
"""

from repro import render_layers, run_cube_known_n, run_parallel_3d, star_program


def build_cube(m: int = 3, seed: int = 0) -> None:
    n = m**3
    print(f"--- Cube-Knowing-n: {m}x{m}x{m} cube on {n} nodes ---")
    result = run_cube_known_n(n, seed=seed)
    print(
        f"{len(result.slabs)} slabs built by the scheduler-driven 2D "
        f"pipeline ({result.scheduler_events} scheduler events), stacked by "
        f"the leader ({result.leader_interactions} accounted interactions)"
    )
    print(render_layers(result.cube_shape()))


def parallel_star(d: int = 7) -> None:
    print(f"\n--- Theorem 5 / §6.4.1: parallel star on a {d}x{d} square ---")
    result = run_parallel_3d(star_program(), d)
    print(
        f"population n = k*d^2 = {result.n} (k = {result.k}); "
        f"parallel interactions {result.parallel_interactions} vs "
        f"sequential {result.sequential_interactions} "
        f"(speedup {result.speedup:.1f}x)"
    )
    print(render_layers(result.shape))


if __name__ == "__main__":
    build_cube()
    parallel_star()
