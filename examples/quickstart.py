"""Quickstart: a solution of automata builds a spanning line and a square.

Runs the two §4 constructors through the declarative experiment layer: a
single ``ExperimentSpec`` against the registered ``demo`` scenario returns
the uniform ``ExperimentResult`` — counters, metrics, and the rendered
stabilized shapes. ``repro run demo --n 10 --seed 0`` is the identical
command-line form, and ``repro list`` shows every other scenario runnable
the same way.

    python examples/quickstart.py
"""

from repro.experiments import ExperimentSpec, run_experiment


def main(n: int = 10, seed: int = 0) -> None:
    spec = ExperimentSpec(scenario="demo", params={"n": n}, seed=seed)
    result = run_experiment(spec)

    m = result.metrics
    print(f"--- spanning line on {m['n']} nodes ---")
    print(f"stabilized after {m['line_events']} effective interactions")
    print(result.renders["line"])

    print(f"\n--- {m['side']}x{m['side']} square on {m['square_n']} nodes ---")
    print(f"stabilized after {m['square_events']} effective interactions")
    print(result.renders["square"])

    print(
        f"\n(total {result.events} events, stop reason "
        f"{result.stop_reason}, wall {result.wall_time:.3f}s — the same "
        f"record `repro run demo --json` emits)"
    )


if __name__ == "__main__":
    main()
