"""Quickstart: a solution of automata builds a spanning line and a square.

Runs the two §4 constructors on small populations under the uniform random
scheduler and renders the stabilized shapes.

    python examples/quickstart.py
"""

from repro import (
    Simulation,
    World,
    render_world,
    spanning_line_protocol,
    square_protocol,
)


def build_line(n: int = 10, seed: int = 0) -> None:
    print(f"--- spanning line on {n} nodes ---")
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    result = Simulation(world, protocol, seed=seed).run_to_stabilization()
    print(f"stabilized after {result.events} effective interactions")
    print(render_world(world, state_char=lambda s: "L" if str(s).startswith("L") else "#"))


def build_square(n: int = 25, seed: int = 1) -> None:
    print(f"\n--- sqrt(n) x sqrt(n) square on {n} nodes (Protocol 1) ---")
    protocol = square_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    result = Simulation(world, protocol, seed=seed).run_to_stabilization()
    print(f"stabilized after {result.events} effective interactions")
    print(render_world(world, state_char=lambda s: "L" if str(s).startswith("L") else "#"))


if __name__ == "__main__":
    build_line()
    build_square()
