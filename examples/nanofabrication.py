"""Programmable-matter scenario: fabricate patterned tiles and replicate a
broken part's template.

The paper motivates molecules/nanorobots self-organizing into materials.
This example (i) colors a tile with the concentric-ring pattern of Remark
4, (ii) fabricates a frame component, and (iii) uses the §7 replicator to
duplicate an arbitrary workpiece (e.g. to reconstruct a detached part from
a surviving template).

    python examples/nanofabrication.py
"""

import random

from repro import (
    frame_program,
    render_labels,
    render_shape,
    replicate_by_shifting,
    ring_pattern_program,
    run_pattern_construction,
    run_shape_construction,
)
from repro.geometry.random_shapes import random_connected_shape


def patterned_tile(d: int = 8) -> None:
    print(f"--- Remark 4: a {d}x{d} tile with 3-color ring pattern ---")
    colors, interactions = run_pattern_construction(ring_pattern_program(3), d)
    print(render_labels(colors))
    print(f"interactions: {interactions}")


def frame_component(d: int = 7) -> None:
    print(f"\n--- a structural frame on the {d}x{d} square ---")
    result = run_shape_construction(frame_program(), d)
    print(render_shape(result.shape))
    print(f"waste released back into the solution: {result.waste} nodes")


def replicate_workpiece(size: int = 14, seed: int = 5) -> None:
    print(f"\n--- §7: replicating a random {size}-node workpiece ---")
    workpiece = random_connected_shape(size, random.Random(seed))
    print("template:")
    print(render_shape(workpiece))
    result = replicate_by_shifting(workpiece, seed=seed)
    assert result.identical
    print("replica (identical up to translation):")
    print(render_shape(result.replica))
    print(
        f"nodes used: {result.nodes_used}, waste: {result.waste}, "
        f"interactions: {result.interactions}"
    )


if __name__ == "__main__":
    patterned_tile()
    frame_component()
    replicate_workpiece()
