"""The two-speed model of §8: component clock vs scheduler clock.

A spanning line grows under the passive scheduler while the finished body
floods an "informed" bit synchronously from the original leader's node.
Sweeping the speed ratio λ (internal rounds per scheduler encounter) shows
the regime change: fast components keep every grown node informed, slow
ones leave an uninformed frontier trailing the growth.

    python examples/two_speed_broadcast.py
"""

from repro import TwoSpeedSimulation, World, broadcast_program, spanning_line_protocol


def run(ratio: float, n: int = 20, seed: int = 9):
    protocol = spanning_line_protocol()
    world = World.of_free_nodes(n, protocol, leaders=1)
    program = broadcast_program(source_state="S", susceptible=lambda s: s == "q1")
    sim = TwoSpeedSimulation(
        world, protocol, program, rounds_per_encounter=ratio, seed=seed
    )
    sim.step()
    world.set_state(0, "S")  # pin the wave source on the original leader
    max_lag = 0
    while sim.step():
        states = world.states().values()
        informed = sum(1 for s in states if s in ("S", "informed"))
        body = informed + sum(1 for s in states if s == "q1")
        max_lag = max(max_lag, body - informed)
    return sim, max_lag


if __name__ == "__main__":
    print("speed ratio λ | encounters | sync rounds | max uninformed frontier")
    for ratio in (0.1, 0.5, 1.0, 2.0, 8.0):
        sim, lag = run(ratio)
        print(f"{ratio:>13} | {sim.encounters:>10} | {sim.rounds:>11} | {lag:>6}")
    print(
        "\nThe paper's §8: distinguishing the scheduler's speed from the\n"
        "components' internal speed is 'very natural'; the lag column is\n"
        "what that distinction costs when components are slow."
    )
