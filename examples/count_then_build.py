"""The paper's headline pipeline: count n, then build a shape, terminating.

Stage 1: Counting-on-a-Line (§6.1) — a leader counts the population w.h.p.
and stores the count in binary on a self-assembled line.
Stage 2: Square-Knowing-n (§6.2) — self-replicating lines assemble the
sqrt(n) x sqrt(n) square.
Stage 3: a shape-constructing TM is simulated on the square and the star
of Figure 7(c) is released (§6.3).

    python examples/count_then_build.py [n]
"""

import sys

from repro import render_shape, run_counting_on_a_line, run_universal, star_program


def main(n: int = 49) -> None:
    print(f"--- stage 1: counting {n} nodes w.h.p. ---")
    count = run_counting_on_a_line(n, b=4, seed=0, exact_factor=4)
    print(
        f"leader halted with r0 = {count.r0} on a line of {count.line_length} "
        f"nodes ({count.events} effective interactions)"
    )

    print("\n--- full pipeline: count -> square -> simulate -> release ---")
    result = run_universal(star_program(), n, seed=0)
    print(
        f"estimated n = {result.n_estimate} (exact: {result.count_exact}), "
        f"square side d = {result.d}, waste = {result.waste}"
    )
    print("released shape:")
    print(render_shape(result.shape))
    print(f"total interactions: {result.total_interactions}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 49)
