"""Self-repair after damage: the robustness scenario of the paper's §8.

A star shape (Figure 7(c)) is constructed by the universal pipeline; then a
part of it detaches — all its connections break and its nodes become free —
and the surviving part reconstructs the missing region from the shape's own
blueprint, paying interactions proportional to the damage only.

Also demonstrates the destructive side: a perpetually faulty environment
(each event may snap a random bond) keeps a re-gluing protocol from ever
stabilizing.

    python examples/self_repair.py
"""

import random

from repro import (
    FaultySimulation,
    Rule,
    RuleProtocol,
    World,
    detach_part,
    render_shape,
    repair_shape,
    star_program,
)
from repro.geometry.ports import PORTS_2D, opposite
from repro.machines.shape_programs import expected_shape


def damage_and_repair(d: int = 9, fraction: float = 0.3, seed: int = 42) -> None:
    blueprint = expected_shape(star_program(), d)
    print(f"--- the target star on a {d}x{d} square ({len(blueprint.cells)} cells) ---")
    print(render_shape(blueprint))

    rng = random.Random(seed)
    damaged, lost = detach_part(blueprint, fraction, rng=rng)
    print(f"\n--- a part of {len(lost)} cells detached ---")
    print(render_shape(damaged))

    result = repair_shape(damaged, blueprint, rng=rng)
    print(
        f"\n--- repaired: {result.nodes_attached} nodes re-attached, "
        f"{result.bonds_restored} bonds restored, "
        f"{result.interactions} interactions "
        f"(vs {len(blueprint.cells)} cells for a full rebuild) ---"
    )
    print(render_shape(result.repaired))
    assert result.repaired.cells == blueprint.cells


def perpetual_faults(n: int = 12, prob: float = 0.3, seed: int = 7) -> None:
    print(
        f"\n--- perpetual faults: gluing protocol, n = {n}, "
        f"break probability {prob} per event ---"
    )
    rules = [
        Rule("q1", p, "q1", opposite(p), 0, "q1", "q1", 1) for p in PORTS_2D
    ]
    protocol = RuleProtocol(rules, initial_state="q1", name="gluing")
    world = World(2)
    for _ in range(n):
        world.add_free_node("q1")
    sim = FaultySimulation(world, protocol, break_prob=prob, seed=seed)
    res = sim.run(max_steps=1000)
    print(
        f"after 1000 steps: stabilized={res.stabilized}, "
        f"{len(sim.breakages)} bonds snapped, "
        f"largest component {sim.largest_component_size()}/{n}"
    )
    print("(the paper's §8: under perpetual setbacks, no construction stabilizes)")


if __name__ == "__main__":
    damage_and_repair()
    perpetual_faults()
