"""Self-repair after damage: the robustness scenario of the paper's §8.

A star shape (Figure 7(c)) is constructed by the universal pipeline; then a
part of it detaches — all its connections break and its nodes become free —
and the surviving part reconstructs the missing region from the shape's own
blueprint, paying interactions proportional to the damage only.

Also demonstrates the destructive side: a perpetually faulty environment
(each event may snap a random bond) keeps a re-gluing protocol from ever
stabilizing.

The constructive half runs as the registered ``repair`` scenario of the
experiment layer (``repro run repair --d 9 --fraction 0.3 --seed 42`` is
the identical spec); the destructive half drives ``FaultySimulation``
directly.

    python examples/self_repair.py
"""

from repro import FaultySimulation, Rule, RuleProtocol, World
from repro.experiments import run_named
from repro.geometry.ports import PORTS_2D, opposite


def damage_and_repair(d: int = 9, fraction: float = 0.3, seed: int = 42) -> None:
    result = run_named("repair", d=d, fraction=fraction, seed=seed)
    metrics = result.metrics
    print(
        f"--- the target star on a {d}x{d} square "
        f"({metrics['blueprint_cells']} cells) ---"
    )
    print(result.renders["blueprint"])

    print(f"\n--- a part of {metrics['detached']} cells detached ---")
    print(result.renders["damaged"])

    print(
        f"\n--- repaired: {metrics['nodes_attached']} nodes re-attached, "
        f"{metrics['bonds_restored']} bonds restored, "
        f"{metrics['interactions']} interactions "
        f"(vs {metrics['blueprint_cells']} cells for a full rebuild) ---"
    )
    print(result.renders["repaired"])
    assert metrics["matches_blueprint"]


def perpetual_faults(n: int = 12, prob: float = 0.3, seed: int = 7) -> None:
    print(
        f"\n--- perpetual faults: gluing protocol, n = {n}, "
        f"break probability {prob} per event ---"
    )
    rules = [
        Rule("q1", p, "q1", opposite(p), 0, "q1", "q1", 1) for p in PORTS_2D
    ]
    protocol = RuleProtocol(rules, initial_state="q1", name="gluing")
    world = World(2)
    for _ in range(n):
        world.add_free_node("q1")
    sim = FaultySimulation(world, protocol, break_prob=prob, seed=seed)
    res = sim.run(max_steps=1000)
    print(
        f"after 1000 steps: stabilized={res.stabilized}, "
        f"{len(sim.breakages)} bonds snapped, "
        f"largest component {sim.largest_component_size()}/{n}"
    )
    print("(the paper's §8: under perpetual setbacks, no construction stabilizes)")


if __name__ == "__main__":
    damage_and_repair()
    perpetual_faults()
